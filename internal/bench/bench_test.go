package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func quickConfig() Config {
	return Config{Scale: 1, Threads: 2, Seed: 42, Quick: true}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "costmodel",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17",
		"lsh", "fp16", "modelcache", "cache", "serve", "shard", "stream", "persist", "blocksize", "hnswrecall", "ivf",
		"quant", "mutate", "tune",
	}
	names := map[string]bool{}
	for _, e := range Registry() {
		names[e.Name] = true
		if e.Paper == "" || e.Description == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.Name)
		}
	}
	for _, n := range want {
		if !names[n] {
			t.Errorf("experiment %q missing from registry", n)
		}
	}
	if len(Names()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(Names()), len(want))
	}
}

func TestGet(t *testing.T) {
	if _, ok := Get("fig8"); !ok {
		t.Error("fig8 not found")
	}
	if _, ok := Get("nope"); ok {
		t.Error("unexpected experiment found")
	}
}

func TestConfigSize(t *testing.T) {
	cfg := Config{Scale: 1}
	if cfg.size(100) != 100 {
		t.Errorf("size = %d", cfg.size(100))
	}
	cfg.Scale = 2
	if cfg.size(100) != 200 {
		t.Errorf("scaled size = %d", cfg.size(100))
	}
	cfg = Config{Scale: 1, Quick: true}
	if cfg.size(800) != 100 {
		t.Errorf("quick size = %d", cfg.size(800))
	}
	if cfg.size(1) != 4 {
		t.Errorf("size floor = %d", cfg.size(1))
	}
	cfg = Config{}
	if cfg.size(50) != 50 {
		t.Errorf("zero scale should default to 1: %d", cfg.size(50))
	}
}

func TestTableFormatting(t *testing.T) {
	tab := newTable("A", "LongHeader")
	tab.addRow("x", "1")
	tab.addRow("longervalue", "2")
	var buf bytes.Buffer
	tab.print(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "A") || !strings.Contains(lines[0], "LongHeader") {
		t.Errorf("header line: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator line: %q", lines[1])
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != "1.5" {
		t.Errorf("ms = %q", got)
	}
	if got := nsPerElem(time.Second, 0); got != "-" {
		t.Errorf("nsPerElem(0) = %q", got)
	}
	if got := nsPerElem(time.Microsecond, 1000); got != "1.000" {
		t.Errorf("nsPerElem = %q", got)
	}
	if got := ratio(4, 2); got != "2.00x" {
		t.Errorf("ratio = %q", got)
	}
	if got := ratio(1, 0); got != "-" {
		t.Errorf("ratio/0 = %q", got)
	}
	if got := fmtBytes(512); got != "512 B" {
		t.Errorf("fmtBytes = %q", got)
	}
	if got := fmtBytes(2 << 20); !strings.Contains(got, "MiB") {
		t.Errorf("fmtBytes MiB = %q", got)
	}
	if got := fmtBytes(3 << 30); !strings.Contains(got, "GiB") {
		t.Errorf("fmtBytes GiB = %q", got)
	}
	if got := fmtBytes(4 << 10); !strings.Contains(got, "KiB") {
		t.Errorf("fmtBytes KiB = %q", got)
	}
}

// TestEveryExperimentRunsQuick executes the full registry at Quick scale:
// the integration test that every figure/table regenerates end to end.
func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick bench suite skipped in -short mode")
	}
	cfg := quickConfig()
	for _, e := range Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := RunOne(&buf, e, cfg); err != nil {
				t.Fatalf("%s: %v\noutput so far:\n%s", e.Name, err, buf.String())
			}
			out := buf.String()
			if !strings.Contains(out, e.Paper) {
				t.Errorf("%s: banner missing", e.Name)
			}
			if len(out) < 100 {
				t.Errorf("%s: suspiciously short output:\n%s", e.Name, out)
			}
		})
	}
}

func TestTable2OutputShape(t *testing.T) {
	e, _ := Get("table2")
	var buf bytes.Buffer
	if err := e.Run(&buf, quickConfig()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, q := range []string{"dbms", "postgres", "clothes"} {
		if !strings.Contains(out, q) {
			t.Errorf("table2 missing query word %q:\n%s", q, out)
		}
	}
	if !strings.Contains(out, "rdbms") {
		t.Errorf("table2 missing expected neighbor:\n%s", out)
	}
}

func TestCostModelOutputShape(t *testing.T) {
	e, _ := Get("costmodel")
	var buf bytes.Buffer
	if err := e.Run(&buf, quickConfig()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Naive E-NLJ") || !strings.Contains(out, "Prefetch E-NLJ") {
		t.Errorf("costmodel rows missing:\n%s", out)
	}
	if !strings.Contains(out, "Results identical") {
		t.Errorf("costmodel equivalence line missing:\n%s", out)
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is covered per-experiment; skip duplicate work in -short mode")
	}
	// RunAll is exercised by TestEveryExperimentRunsQuick per experiment;
	// here only verify the error path wiring with a tiny subset by calling
	// RunOne on the cheapest experiment.
	e, _ := Get("table2")
	var buf bytes.Buffer
	if err := RunOne(&buf, e, quickConfig()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "completed in") {
		t.Error("RunOne banner missing")
	}
}

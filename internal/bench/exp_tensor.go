package bench

import (
	"context"
	"fmt"
	"io"
	"math"

	"ejoin/internal/core"
	"ejoin/internal/vec"
	"ejoin/internal/workload"
)

// fig11Grid is the (#FP32 ops, dimensionality) grid of Figures 11/12.
// tuples per side = sqrt(ops/dim), as in the paper's Section VI-D walk-
// through. The paper's largest group (256M) is scaled to 25.6M by default.
func fig11Grid(cfg Config) (opsAxis []int64, dims []int) {
	opsAxis = []int64{25_600, 2_560_000, int64(cfg.size(25_600_000))}
	dims = []int{1, 4, 16, 64, 256}
	return
}

func tuplesFor(ops int64, dim int) int {
	n := int(math.Sqrt(float64(ops) / float64(dim)))
	if n < 1 {
		n = 1
	}
	return n
}

// expFig11 regenerates Figure 11: per-FP32-element time of the vectorized
// NLJ versus the tensor formulation across total work and vector
// dimensionality. Tensor pays off once there is enough work to amortize
// blocking; NLJ wins only on tiny inputs.
func expFig11() Experiment {
	return Experiment{
		Name:        "fig11",
		Paper:       "Figure 11",
		Description: "Per-element time: Vectorize-NLJ vs Tensor across (#FP32 ops, dimensionality).",
		Run: func(w io.Writer, cfg Config) error {
			ctx := context.Background()
			opsAxis, dims := fig11Grid(cfg)
			t := newTable("#FP32 Ops", "Vector #FP32", "Tuples/side", "NLJ [ns/elem]", "Tensor [ns/elem]", "Tensor speedup")
			for _, ops := range opsAxis {
				for _, dim := range dims {
					n := tuplesFor(ops, dim)
					left := workload.Vectors(cfg.Seed, n, dim)
					right := workload.Vectors(cfg.Seed+1, n, dim)
					elems := int64(n) * int64(n) * int64(dim)

					dN, err := timed(func() error {
						_, err := core.NLJ(ctx, left, right, 0.8, core.Options{Kernel: vec.KernelSIMD, Threads: cfg.threads()})
						return err
					})
					if err != nil {
						return err
					}
					dT, err := timed(func() error {
						_, err := core.TensorJoin(ctx, left, right, 0.8, core.Options{Kernel: vec.KernelSIMD, Threads: cfg.threads()})
						return err
					})
					if err != nil {
						return err
					}
					t.addRow(fmt.Sprintf("%d", ops), fmt.Sprintf("%d", dim), fmt.Sprintf("%d", n),
						nsPerElem(dN, elems), nsPerElem(dT, elems),
						ratio(float64(dN.Nanoseconds()), float64(dT.Nanoseconds())))
				}
			}
			t.print(w)
			fmt.Fprintln(w, "\nShape check: tensor wins at scale; with only a handful of tuples (large dim, small ops) NLJ is competitive or better.")
			return nil
		},
	}
}

// expFig12 regenerates Figure 12: fully batched tensor join versus the
// non-batched variant that streams one side vector-by-vector.
func expFig12() Experiment {
	return Experiment{
		Name:        "fig12",
		Paper:       "Figure 12",
		Description: "Impact of vector batching: Tensor-Fully-Batched vs Tensor-Non-Batched (one input processed one vector at a time).",
		Run: func(w io.Writer, cfg Config) error {
			ctx := context.Background()
			opsAxis, dims := fig11Grid(cfg)
			t := newTable("#FP32 Ops", "Vector #FP32", "Batched [ns/elem]", "Non-Batched [ns/elem]", "Batched speedup")
			for _, ops := range opsAxis {
				for _, dim := range dims {
					n := tuplesFor(ops, dim)
					left := workload.Vectors(cfg.Seed, n, dim)
					right := workload.Vectors(cfg.Seed+1, n, dim)
					elems := int64(n) * int64(n) * int64(dim)

					dB, err := timed(func() error {
						_, err := core.TensorJoin(ctx, left, right, 0.8, core.Options{Kernel: vec.KernelSIMD, Threads: cfg.threads()})
						return err
					})
					if err != nil {
						return err
					}
					dNB, err := timed(func() error {
						_, err := core.TensorJoinNonBatched(ctx, left, right, 0.8, core.Options{Kernel: vec.KernelSIMD, Threads: cfg.threads()})
						return err
					})
					if err != nil {
						return err
					}
					t.addRow(fmt.Sprintf("%d", ops), fmt.Sprintf("%d", dim),
						nsPerElem(dB, elems), nsPerElem(dNB, elems),
						ratio(float64(dNB.Nanoseconds()), float64(dB.Nanoseconds())))
				}
			}
			t.print(w)
			fmt.Fprintln(w, "\nShape check: batching matters more as input grows; negligible on tiny inputs.")
			return nil
		},
	}
}

// expFig13 regenerates Figure 13: mini-batch size versus relative slowdown
// and relative reduction of required intermediate memory (the Figure 7
// trade-off).
func expFig13() Experiment {
	return Experiment{
		Name:        "fig13",
		Paper:       "Figure 13",
		Description: "Mini-batch size impact on memory requirements and execution time, relative to the unbatched join.",
		Run: func(w io.Writer, cfg Config) error {
			ctx := context.Background()
			n := cfg.size(8000)
			left := workload.Vectors(cfg.Seed, n, 100)
			right := workload.Vectors(cfg.Seed+1, n, 100)
			opts := core.Options{Kernel: vec.KernelSIMD, Threads: cfg.threads()}

			baseRes, err := core.TensorJoin(ctx, left, right, 0.8, opts)
			if err != nil {
				return err
			}
			dBase, err := timed(func() error {
				_, err := core.TensorJoin(ctx, left, right, 0.8, opts)
				return err
			})
			if err != nil {
				return err
			}
			baseBytes := baseRes.Stats.PeakIntermediateBytes

			t := newTable("Mini-Batch", "Time [ms]", "Relative slowdown", "Peak intermediate", "RAM reduction")
			t.addRow(fmt.Sprintf("No Batch (%dx%d)", n, n), ms(dBase), "1.00x", fmtBytes(baseBytes), "1.00x")
			for _, frac := range []int{2, 4, 8, 16} {
				b := n / frac
				bOpts := opts
				bOpts.BatchRows, bOpts.BatchCols = b, b
				res, err := core.TensorJoin(ctx, left, right, 0.8, bOpts)
				if err != nil {
					return err
				}
				d, err := timed(func() error {
					_, err := core.TensorJoin(ctx, left, right, 0.8, bOpts)
					return err
				})
				if err != nil {
					return err
				}
				if len(res.Matches) != len(baseRes.Matches) {
					return fmt.Errorf("fig13: batched result differs: %d vs %d matches", len(res.Matches), len(baseRes.Matches))
				}
				t.addRow(fmt.Sprintf("%dx%d", b, b), ms(d),
					ratio(float64(d.Microseconds()), float64(dBase.Microseconds())),
					fmtBytes(res.Stats.PeakIntermediateBytes),
					ratio(float64(baseBytes), float64(res.Stats.PeakIntermediateBytes)))
			}
			t.print(w)
			fmt.Fprintln(w, "\nShape check: memory drops quadratically with batch size at a modest slowdown.")
			return nil
		},
	}
}

// expFig14 regenerates Figure 14: tensor join versus optimized NLJ
// end-to-end across input sizes (paper: up to 1Mx1M with NLJ timing out).
func expFig14() Experiment {
	return Experiment{
		Name:        "fig14",
		Paper:       "Figure 14",
		Description: "Tensor join vs NLJ formulation end-to-end, 100-D vectors.",
		Run: func(w io.Writer, cfg Config) error {
			ctx := context.Background()
			shapes := []struct{ nr, ns int }{
				{cfg.size(1000), cfg.size(1000)},
				{cfg.size(10000), cfg.size(1000)},
				{cfg.size(10000), cfg.size(10000)},
				{cfg.size(40000), cfg.size(10000)},
			}
			t := newTable("|R| x |S|", "Tensor [ms]", "NLJ [ms]", "Tensor speedup")
			for _, sh := range shapes {
				left := workload.Vectors(cfg.Seed, sh.nr, 100)
				right := workload.Vectors(cfg.Seed+1, sh.ns, 100)
				opts := core.Options{Kernel: vec.KernelSIMD, Threads: cfg.threads()}
				dT, err := timed(func() error {
					_, err := core.TensorJoin(ctx, left, right, 0.8, opts)
					return err
				})
				if err != nil {
					return err
				}
				dN, err := timed(func() error {
					_, err := core.NLJ(ctx, left, right, 0.8, opts)
					return err
				})
				if err != nil {
					return err
				}
				t.addRow(fmt.Sprintf("%dx%d", sh.nr, sh.ns), ms(dT), ms(dN),
					ratio(float64(dN.Nanoseconds()), float64(dT.Nanoseconds())))
			}
			t.print(w)
			fmt.Fprintln(w, "\nShape check: both scale ~linearly in pair count; tensor holds a consistent multiple (paper: close to an order of magnitude with MKL).")
			return nil
		},
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

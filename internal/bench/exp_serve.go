package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"ejoin/internal/model"
	"ejoin/internal/service"
	"ejoin/internal/workload"
)

// servePhase is one load phase (cold or warm store) of the serve
// experiment.
type servePhase struct {
	QPS        float64 `json:"qps"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
	ModelCalls int64   `json:"model_calls"`
}

// serveReport is the machine-readable result, written to BENCH_serve.json.
type serveReport struct {
	Clients        int        `json:"clients"`
	RequestsTotal  int        `json:"requests_total"`
	RowsPerSide    int        `json:"rows_per_side"`
	Cold           servePhase `json:"cold"`
	Warm           servePhase `json:"warm"`
	PlanCacheHits  int64      `json:"plan_cache_hits"`
	AdmissionWaits int64      `json:"admission_waits"`
	Errors         int64      `json:"errors"`
}

// expServe measures the query service under concurrent load: 8 clients
// against one in-process Engine, cold store then warm. The warm phase
// must make zero model calls (the corpus is fully cached) and its tail
// latency shows what the shared store buys every request after the first
// wave.
func expServe() Experiment {
	return Experiment{
		Name:        "serve",
		Paper:       "Service (new)",
		Description: "Concurrent clients against an in-process Engine: QPS and p50/p95/p99 latency, cold vs warm store.",
		Run: func(w io.Writer, cfg Config) error {
			const clients = 8
			perClient := 12
			if cfg.Quick {
				perClient = 4
			}
			rows := cfg.size(240)

			base, err := model.NewHashEmbedder(100)
			if err != nil {
				return err
			}
			// Per-call latency puts the model on the critical path, the
			// regime a serving deployment faces with real models.
			counting := model.NewCountingModel(model.NewLatencyModel(base, 20*time.Microsecond))

			engine, err := service.NewEngine(service.Config{
				Model:   counting,
				Store:   cfg.Store,
				Threads: cfg.threads(),
			})
			if err != nil {
				return err
			}
			engine.Store().Reset() // the experiment owns cold-vs-warm transitions
			lt, err := stringTable(workload.Strings(cfg.Seed, rows, nil))
			if err != nil {
				return err
			}
			rt, err := stringTable(workload.Strings(cfg.Seed+1, rows, nil))
			if err != nil {
				return err
			}
			if err := engine.RegisterTable("left", lt); err != nil {
				return err
			}
			if err := engine.RegisterTable("right", rt); err != nil {
				return err
			}

			// A small set of distinct query texts: the plan cache absorbs
			// parse+bind after each text's first arrival.
			queries := []string{
				"SELECT * FROM left JOIN right ON SIM(left.text, right.text) >= 0.80",
				"SELECT * FROM left JOIN right ON SIM(left.text, right.text) >= 0.85",
				"SELECT * FROM left JOIN right ON TOPK(left.text, right.text, 3)",
			}

			phase := func() (servePhase, error) {
				counting.Reset()
				latencies := make([][]time.Duration, clients)
				var wg sync.WaitGroup
				errs := make(chan error, clients)
				start := time.Now()
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						for i := 0; i < perClient; i++ {
							q := queries[(c+i)%len(queries)]
							t0 := time.Now()
							if _, err := engine.Query(context.Background(), service.QueryRequest{SQL: q}); err != nil {
								errs <- err
								return
							}
							latencies[c] = append(latencies[c], time.Since(t0))
						}
					}(c)
				}
				wg.Wait()
				wall := time.Since(start)
				close(errs)
				for err := range errs {
					return servePhase{}, err
				}
				var all []time.Duration
				for _, l := range latencies {
					all = append(all, l...)
				}
				sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
				return servePhase{
					QPS:        float64(len(all)) / wall.Seconds(),
					P50Ms:      pctMs(all, 0.50),
					P95Ms:      pctMs(all, 0.95),
					P99Ms:      pctMs(all, 0.99),
					ModelCalls: counting.Calls(),
				}, nil
			}

			cold, err := phase()
			if err != nil {
				return err
			}
			warm, err := phase()
			if err != nil {
				return err
			}

			st := engine.Stats()
			rep := serveReport{
				Clients:        clients,
				RequestsTotal:  2 * clients * perClient,
				RowsPerSide:    rows,
				Cold:           cold,
				Warm:           warm,
				PlanCacheHits:  st.PlanCacheHits,
				AdmissionWaits: st.AdmissionWaits,
				Errors:         st.Errors,
			}

			t := newTable("Phase", "QPS", "p50 [ms]", "p95 [ms]", "p99 [ms]", "Model calls")
			t.addRow("cold (empty store)", fmt.Sprintf("%.1f", cold.QPS),
				fmt.Sprintf("%.2f", cold.P50Ms), fmt.Sprintf("%.2f", cold.P95Ms),
				fmt.Sprintf("%.2f", cold.P99Ms), fmt.Sprint(cold.ModelCalls))
			t.addRow("warm (shared store)", fmt.Sprintf("%.1f", warm.QPS),
				fmt.Sprintf("%.2f", warm.P50Ms), fmt.Sprintf("%.2f", warm.P95Ms),
				fmt.Sprintf("%.2f", warm.P99Ms), fmt.Sprint(warm.ModelCalls))
			t.print(w)
			fmt.Fprintf(w, "\n%d clients x %d requests, plan cache hits %d, admission waits %d, errors %d\n",
				clients, 2*perClient, st.PlanCacheHits, st.AdmissionWaits, st.Errors)
			if warm.ModelCalls != 0 {
				fmt.Fprintf(w, "WARNING: warm phase made %d model calls; expected 0 for a fully shared corpus\n", warm.ModelCalls)
			}

			if cfg.JSONDir != "" {
				path := filepath.Join(cfg.JSONDir, "BENCH_serve.json")
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					return fmt.Errorf("bench: writing %s: %w", path, err)
				}
				fmt.Fprintf(w, "wrote %s\n", path)
			}
			return nil
		},
	}
}

// pctMs is the p-th percentile of sorted durations, in milliseconds.
func pctMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i].Microseconds()) / 1000
}

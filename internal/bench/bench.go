// Package bench is the experiment harness: one registered experiment per
// table/figure of the paper's evaluation (Section VI), each regenerating
// the same rows/series the paper reports, at host-scaled input sizes.
//
// The paper's testbed is a 2-socket, 48-thread Xeon with MKL and Milvus;
// this harness runs the Go reproduction on whatever host it gets, so
// absolute numbers differ. What must hold is the shape: who wins, by
// roughly what factor, and where crossovers fall. EXPERIMENTS.md records
// paper-vs-measured for each experiment.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"ejoin/internal/embstore"
)

// Config scales and seeds experiments.
type Config struct {
	// Scale multiplies base input sizes (1.0 = laptop-scale defaults;
	// ~100 approaches paper sizes).
	Scale float64
	// Threads caps operator parallelism; <=0 uses GOMAXPROCS.
	Threads int
	// Seed drives all workload generation.
	Seed int64
	// Quick shrinks sizes further for CI/tests.
	Quick bool
	// Store is the process-wide shared embedding store (set by cmd/ejbench
	// so experiments share one cache); nil experiments build their own.
	Store *embstore.Store
	// JSONDir, when non-empty, is where experiments that emit machine-
	// readable results (BENCH_*.json) write them.
	JSONDir string
}

// DefaultConfig returns the standard laptop-scale configuration.
func DefaultConfig() Config {
	return Config{Scale: 1, Threads: runtime.GOMAXPROCS(0), Seed: 42}
}

// size applies Scale/Quick to a base input size.
func (c Config) size(n int) int {
	f := c.Scale
	if f <= 0 {
		f = 1
	}
	if c.Quick {
		f /= 8
	}
	v := int(float64(n) * f)
	if v < 4 {
		v = 4
	}
	return v
}

func (c Config) threads() int {
	if c.Threads > 0 {
		return c.Threads
	}
	return runtime.GOMAXPROCS(0)
}

// Experiment regenerates one table or figure.
type Experiment struct {
	// Name is the CLI identifier (e.g. "fig8").
	Name string
	// Paper is the table/figure reference (e.g. "Figure 8").
	Paper string
	// Description says what the experiment demonstrates.
	Description string
	// Run executes the experiment, writing its rows to w.
	Run func(w io.Writer, cfg Config) error
}

// Registry returns all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		expTable1(),
		expTable2(),
		expCostModel(),
		expFig8(),
		expFig9(),
		expFig10(),
		expFig11(),
		expFig12(),
		expFig13(),
		expFig14(),
		expFig15(),
		expFig16(),
		expFig17(),
		expLSH(),
		expFP16(),
		expModelCache(),
		expCache(),
		expServe(),
		expShard(),
		expStream(),
		expPersist(),
		expMutate(),
		expTune(),
		expBlockSize(),
		expHNSWRecall(),
		expIVF(),
		expQuant(),
	}
}

// Get returns the named experiment.
func Get(name string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names returns all experiment names, sorted.
func Names() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// RunAll executes every experiment against w.
func RunAll(w io.Writer, cfg Config) error {
	for _, e := range Registry() {
		if err := RunOne(w, e, cfg); err != nil {
			return fmt.Errorf("bench: %s: %w", e.Name, err)
		}
	}
	return nil
}

// RunOne executes a single experiment with its banner.
func RunOne(w io.Writer, e Experiment, cfg Config) error {
	fmt.Fprintf(w, "\n=== %s (%s) ===\n%s\n\n", e.Paper, e.Name, e.Description)
	start := time.Now()
	if err := e.Run(w, cfg); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n[%s completed in %v]\n", e.Name, time.Since(start).Round(time.Millisecond))
	return nil
}

// timed measures one function call.
func timed(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// table accumulates aligned text output.
type table struct {
	headers []string
	rows    [][]string
}

func newTable(headers ...string) *table {
	return &table{headers: headers}
}

func (t *table) addRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) print(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	io.WriteString(w, b.String())
}

// ms formats a duration in milliseconds with one decimal.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// nsPerElem formats nanoseconds per element.
func nsPerElem(d time.Duration, elems int64) string {
	if elems == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/float64(elems))
}

// ratio formats a/b with two decimals.
func ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

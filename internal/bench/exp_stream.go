package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/cost"
	"ejoin/internal/embstore"
	"ejoin/internal/model"
	"ejoin/internal/plan"
	"ejoin/internal/vec"
	"ejoin/internal/workload"
)

// streamPhase is one executor's measurement over the same workload.
type streamPhase struct {
	QPS          float64 `json:"qps"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	AllocPerQry  int64   `json:"alloc_bytes_per_query"`
	Matches      int     `json:"matches"`
	ModelCallsQ0 int64   `json:"model_calls_first_query"`
}

// streamReport is the machine-readable result, written to BENCH_stream.json.
type streamReport struct {
	ProbeRows     int         `json:"probe_rows"`
	BuildRows     int         `json:"build_rows"`
	BlockRows     int         `json:"block_rows"`
	Limit         int         `json:"limit"`
	Iterations    int         `json:"iterations"`
	Streaming     streamPhase `json:"streaming"`
	Materializing streamPhase `json:"materializing"`
	// AllocRatio is materializing / streaming intermediate bytes per
	// query; the acceptance floor is 4.
	AllocRatio float64 `json:"alloc_ratio"`
}

// expStream measures the streaming engine against the materializing one
// on the workload streaming exists for: a threshold join with a small
// LIMIT over a probe side far larger than the build side. The stream
// satisfies the limit within the first couple of blocks and stops; the
// materializing run gathers and probes the whole probe side first. The
// report captures warm-store throughput, tail latency, and intermediate
// allocations per query for both.
func expStream() Experiment {
	return Experiment{
		Name:        "stream",
		Paper:       "Streaming exec (new)",
		Description: "Block-at-a-time streaming vs materializing executor: QPS, p95 and intermediate allocations on a threshold join + LIMIT.",
		Run: func(w io.Writer, cfg Config) error {
			const (
				buildRows = 32
				blockRows = 64
				limit     = 10
				dim       = 64
			)
			probeRows := cfg.size(4000)
			iters := 30
			if cfg.Quick {
				iters = 10
			}

			words := workload.Strings(cfg.Seed, probeRows, nil)
			left, err := stringTable(words)
			if err != nil {
				return err
			}
			// Build side = a prefix of the probe strings: identical strings
			// meet any threshold, so the limit is satisfiable within the
			// first block.
			right, err := stringTable(words[:buildRows])
			if err != nil {
				return err
			}
			m, err := model.NewHashEmbedder(dim)
			if err != nil {
				return err
			}
			counting := model.NewCountingModel(m)
			q := plan.Query{
				Left:  plan.TableRef{Name: "probe", Table: left, TextColumn: "text"},
				Right: plan.TableRef{Name: "build", Table: right, TextColumn: "text"},
				Model: counting,
				Join:  plan.JoinSpec{Kind: plan.ThresholdJoin, Threshold: 0.5},
			}
			naive, err := plan.NewNaivePlan(q)
			if err != nil {
				return err
			}
			o := plan.NewOptimizer()
			s := cost.StrategyNLJ
			o.ForceStrategy = &s
			optimized, err := o.Optimize(naive)
			if err != nil {
				return err
			}

			store := embstore.New(embstore.Config{})
			ex := &plan.Executor{
				Options:   core.Options{Kernel: vec.DefaultKernel(), Threads: 1},
				Store:     store,
				BlockRows: blockRows,
			}
			ctx := context.Background()

			// Warm the shared store so both phases measure executor work,
			// not model calls (the cold-corpus gap is even larger for
			// streaming — it never embeds rows past the limit — but mixing
			// it in would blur the intermediate-allocation comparison).
			if _, _, err := store.EmbedAll(ctx, counting, words, embstore.BatchOptions{}); err != nil {
				return err
			}

			phase := func(streaming bool) (streamPhase, error) {
				counting.Reset()
				run := func() (*plan.ExecResult, error) {
					if streaming {
						return ex.ExecuteStreaming(ctx, optimized, limit)
					}
					res, err := ex.Execute(ctx, optimized)
					if err == nil && len(res.Matches) > limit {
						res.Matches = res.Matches[:limit]
					}
					return res, err
				}
				// Settle lazy state, and record first-query model calls
				// (zero on a warm store for both executors).
				first, err := run()
				if err != nil {
					return streamPhase{}, err
				}
				var before, after runtime.MemStats
				lat := make([]time.Duration, 0, iters)
				runtime.GC()
				runtime.ReadMemStats(&before)
				start := time.Now()
				for i := 0; i < iters; i++ {
					t0 := time.Now()
					if _, err := run(); err != nil {
						return streamPhase{}, err
					}
					lat = append(lat, time.Since(t0))
				}
				wall := time.Since(start)
				runtime.ReadMemStats(&after)
				sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
				return streamPhase{
					QPS:          float64(iters) / wall.Seconds(),
					P50Ms:        pctMs(lat, 0.50),
					P95Ms:        pctMs(lat, 0.95),
					AllocPerQry:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
					Matches:      len(first.Matches),
					ModelCallsQ0: counting.Calls(),
				}, nil
			}

			streamed, err := phase(true)
			if err != nil {
				return err
			}
			materialized, err := phase(false)
			if err != nil {
				return err
			}

			rep := streamReport{
				ProbeRows:     probeRows,
				BuildRows:     buildRows,
				BlockRows:     blockRows,
				Limit:         limit,
				Iterations:    iters,
				Streaming:     streamed,
				Materializing: materialized,
				AllocRatio:    float64(materialized.AllocPerQry) / float64(streamed.AllocPerQry),
			}

			t := newTable("Executor", "QPS", "p50 [ms]", "p95 [ms]", "Alloc/query [B]", "Matches")
			t.addRow("streaming", fmt.Sprintf("%.1f", streamed.QPS),
				fmt.Sprintf("%.3f", streamed.P50Ms), fmt.Sprintf("%.3f", streamed.P95Ms),
				fmt.Sprint(streamed.AllocPerQry), fmt.Sprint(streamed.Matches))
			t.addRow("materializing", fmt.Sprintf("%.1f", materialized.QPS),
				fmt.Sprintf("%.3f", materialized.P50Ms), fmt.Sprintf("%.3f", materialized.P95Ms),
				fmt.Sprint(materialized.AllocPerQry), fmt.Sprint(materialized.Matches))
			t.print(w)
			fmt.Fprintf(w, "\n%d probe rows vs %d build rows, block %d, LIMIT %d: %.1fx fewer intermediate bytes streaming\n",
				probeRows, buildRows, blockRows, limit, rep.AllocRatio)
			if rep.AllocRatio < 4 {
				fmt.Fprintf(w, "WARNING: alloc ratio %.1f below the 4x acceptance floor\n", rep.AllocRatio)
			}

			if cfg.JSONDir != "" {
				path := filepath.Join(cfg.JSONDir, "BENCH_stream.json")
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					return fmt.Errorf("bench: writing %s: %w", path, err)
				}
				fmt.Fprintf(w, "wrote %s\n", path)
			}
			return nil
		},
	}
}

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/embstore"
	"ejoin/internal/model"
	"ejoin/internal/plan"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
	"ejoin/internal/workload"
)

// cacheReport is the machine-readable result of the cache experiment,
// written to BENCH_cache.json when Config.JSONDir is set.
type cacheReport struct {
	Rows           int     `json:"rows_per_side"`
	ColdMs         float64 `json:"cold_ms"`
	WarmMs         float64 `json:"warm_ms"`
	Speedup        float64 `json:"speedup"`
	ColdModelCalls int64   `json:"cold_model_calls"`
	WarmModelCalls int64   `json:"warm_model_calls"`
	HitRatio       float64 `json:"hit_ratio"`
	StoreEntries   int     `json:"store_entries"`
	StoreBytes     int64   `json:"store_bytes"`
	Identical      bool    `json:"identical_results"`
}

// expCache measures the shared embedding store across repeated queries:
// the same Query.Run twice against one store, cold then warm. The warm
// run must perform zero model calls for already-seen inputs and produce
// identical join results; the speedup is the E_µ share of end-to-end time
// the store reclaims for every query after the first.
func expCache() Experiment {
	return Experiment{
		Name:        "cache",
		Paper:       "Store (new)",
		Description: "Shared embedding store across queries: cold vs warm Query.Run, hit ratio, model calls, speedup.",
		Run: func(w io.Writer, cfg Config) error {
			ctx := context.Background()
			nr, ns := cfg.size(300), cfg.size(300)

			lt, err := stringTable(workload.Strings(cfg.Seed, nr, nil))
			if err != nil {
				return err
			}
			rt, err := stringTable(workload.Strings(cfg.Seed+1, ns, nil))
			if err != nil {
				return err
			}

			base, err := model.NewHashEmbedder(100)
			if err != nil {
				return err
			}
			// A per-call latency makes the model the dominant cost, the
			// regime the store exists for (remote or deep models).
			counting := model.NewCountingModel(model.NewLatencyModel(base, 20*time.Microsecond))

			store := cfg.Store
			if store == nil {
				store = embstore.New(embstore.Config{})
			}
			store.Reset() // the experiment owns cold-vs-warm transitions
			ex := &plan.Executor{Options: core.Options{Kernel: vec.KernelSIMD, Threads: cfg.threads()}, Store: store}
			opt := plan.NewOptimizer()
			opt.Store = store

			q := plan.Query{
				Left:  plan.TableRef{Name: "L", Table: lt, TextColumn: "text"},
				Right: plan.TableRef{Name: "R", Table: rt, TextColumn: "text"},
				Model: counting,
				Join:  plan.JoinSpec{Kind: plan.ThresholdJoin, Threshold: 0.8},
			}

			run := func() (*plan.ExecResult, time.Duration, int64, error) {
				counting.Reset()
				start := time.Now()
				res, _, err := plan.Run(ctx, q, ex, opt)
				return res, time.Since(start), counting.Calls(), err
			}

			coldRes, dCold, coldCalls, err := run()
			if err != nil {
				return err
			}
			warmRes, dWarm, warmCalls, err := run()
			if err != nil {
				return err
			}

			identical := sameMatches(coldRes, warmRes)
			st := store.Stats()
			rep := cacheReport{
				Rows:           nr,
				ColdMs:         float64(dCold.Microseconds()) / 1000,
				WarmMs:         float64(dWarm.Microseconds()) / 1000,
				Speedup:        float64(dCold) / float64(dWarm),
				ColdModelCalls: coldCalls,
				WarmModelCalls: warmCalls,
				HitRatio:       st.HitRatio(),
				StoreEntries:   st.Entries,
				StoreBytes:     st.Bytes,
				Identical:      identical,
			}

			t := newTable("Run", "Time [ms]", "Model calls", "Matches")
			t.addRow("cold (empty store)", ms(dCold), fmt.Sprint(coldCalls), fmt.Sprint(len(coldRes.Matches)))
			t.addRow("warm (shared store)", ms(dWarm), fmt.Sprint(warmCalls), fmt.Sprint(len(warmRes.Matches)))
			t.print(w)
			fmt.Fprintf(w, "\nSpeedup %.2fx, store hit ratio %.2f, %d entries / %d bytes resident, identical results: %v\n",
				rep.Speedup, rep.HitRatio, st.Entries, st.Bytes, identical)
			if warmCalls != 0 {
				fmt.Fprintf(w, "WARNING: warm run made %d model calls; expected 0 for a fully shared corpus\n", warmCalls)
			}

			if cfg.JSONDir != "" {
				path := filepath.Join(cfg.JSONDir, "BENCH_cache.json")
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					return fmt.Errorf("bench: writing %s: %w", path, err)
				}
				fmt.Fprintf(w, "wrote %s\n", path)
			}
			return nil
		},
	}
}

// stringTable wraps a string slice as a one-column table.
func stringTable(vals []string) (*relational.Table, error) {
	schema := relational.Schema{{Name: "text", Type: relational.String}}
	return relational.NewTable(schema, []relational.Column{relational.StringColumn(vals)})
}

// sameMatches reports whether two executions produced the same match set
// in the same order (executions are deterministic for scan strategies).
func sameMatches(a, b *plan.ExecResult) bool {
	if len(a.Matches) != len(b.Matches) {
		return false
	}
	for i := range a.Matches {
		if a.Matches[i] != b.Matches[i] {
			return false
		}
	}
	return true
}

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/ivf"
	"ejoin/internal/mat"
	"ejoin/internal/quant"
	"ejoin/internal/vec"
	"ejoin/internal/workload"
)

// quantLevel is one precision rung's measured row in BENCH_quant.json.
type quantLevel struct {
	Precision      string  `json:"precision"`
	BytesPerVector float64 `json:"bytes_per_vector"`
	JoinMs         float64 `json:"join_ms"`
	QPS            float64 `json:"qps"`
	// Recall is the fraction of the F32 join's matches the quantized join
	// retains (1.0 for f32 itself).
	Recall float64 `json:"recall_vs_f32"`
}

// quantReport is the machine-readable result of the quant experiment.
type quantReport struct {
	Rows   int          `json:"rows_per_side"`
	Dim    int          `json:"dim"`
	Levels []quantLevel `json:"levels"`
	// PQIVF summarizes the compressed index path.
	PQIVF struct {
		BytesPerVector     float64 `json:"bytes_per_vector"`
		CompressionVsFlat  float64 `json:"compression_vs_flat"`
		RecallAt10ADC      float64 `json:"recall_at_10_adc"`
		RecallAt10Reranked float64 `json:"recall_at_10_reranked"`
		ProbeQPS           float64 `json:"probe_qps"`
	} `json:"pq_ivf"`
}

// expQuant measures the precision ladder end to end: for each scan rung
// (F32/F16/INT8) the threshold-join cost, storage, and agreement with the
// exact join; and for PQ the compressed-index recall with and without the
// exact rerank pass, against exact F32 top-k.
func expQuant() Experiment {
	return Experiment{
		Name:        "quant",
		Paper:       "Precision ladder (new)",
		Description: "F32/F16/INT8 threshold scans (bytes/vector, QPS, recall vs F32) and PQ-IVF probes (ADC vs reranked recall@10, compression).",
		Run: func(w io.Writer, cfg Config) error {
			ctx := context.Background()
			n := cfg.size(2000)
			dim := 64
			threshold := float32(0.8)
			// Tight clusters: within-cluster similarity ~0.93, across ~0,
			// so the threshold sits with real margin on both sides — the
			// regime where bounded-error quantized scans keep recall ~1.
			left := workload.CorrelatedVectorsFrom(cfg.Seed, 999, n, dim, 32, 0.05)
			right := workload.CorrelatedVectorsFrom(cfg.Seed+1, 999, n, dim, 32, 0.05)
			opts := core.Options{Kernel: vec.DefaultKernel(), Threads: cfg.threads()}

			rep := quantReport{Rows: n, Dim: dim}
			exact, err := core.NLJ(ctx, left, right, threshold, opts)
			if err != nil {
				return err
			}
			exactSet := make(map[[2]int]bool, len(exact.Matches))
			for _, m := range exact.Matches {
				exactSet[[2]int{m.Left, m.Right}] = true
			}
			recallOf := func(res *core.Result) float64 {
				if len(exact.Matches) == 0 {
					return 1
				}
				kept := 0
				for _, m := range res.Matches {
					if exactSet[[2]int{m.Left, m.Right}] {
						kept++
					}
				}
				return float64(kept) / float64(len(exact.Matches))
			}

			t := newTable("Precision", "Bytes/vec", "Join [ms]", "Matches", "Recall vs F32")
			runLevel := func(prec quant.Precision, join func() (*core.Result, error)) error {
				start := time.Now()
				res, err := join()
				if err != nil {
					return err
				}
				elapsed := time.Since(start)
				lv := quantLevel{
					Precision:      prec.String(),
					BytesPerVector: float64(prec.BytesPerVector(dim)),
					JoinMs:         float64(elapsed.Microseconds()) / 1000,
					Recall:         recallOf(res),
				}
				if elapsed > 0 {
					lv.QPS = 1 / elapsed.Seconds()
				}
				rep.Levels = append(rep.Levels, lv)
				t.addRow(lv.Precision, fmt.Sprintf("%.0f", lv.BytesPerVector), ms(elapsed),
					fmt.Sprint(len(res.Matches)), fmt.Sprintf("%.4f", lv.Recall))
				return nil
			}
			if err := runLevel(quant.PrecisionF32, func() (*core.Result, error) {
				return core.NLJ(ctx, left, right, threshold, opts)
			}); err != nil {
				return err
			}
			lf16, rf16 := mat.EncodeF16(left), mat.EncodeF16(right)
			if err := runLevel(quant.PrecisionF16, func() (*core.Result, error) {
				return core.NLJF16(ctx, lf16, rf16, threshold, opts)
			}); err != nil {
				return err
			}
			li8, ri8 := quant.EncodeInt8(left), quant.EncodeInt8(right)
			if err := runLevel(quant.PrecisionInt8, func() (*core.Result, error) {
				return core.NLJI8(ctx, li8, ri8, threshold, opts)
			}); err != nil {
				return err
			}
			t.print(w)

			// PQ-IVF: compressed probes against exact F32 top-k. The
			// per-subspace codebook scales with the corpus so its amortized
			// overhead stays small even at quick sizes.
			nq, k := 50, 10
			centroids := n / 8
			if centroids > 256 {
				centroids = 256
			}
			if centroids < 16 {
				centroids = 16
			}
			queries := workload.CorrelatedVectorsFrom(cfg.Seed+2, 999, nq, dim, 32, 0.05)
			ix, err := ivf.BuildPQ(left, ivf.Config{Seed: cfg.Seed, NProbe: 12}, quant.PQConfig{M: 8, Centroids: centroids, Seed: cfg.Seed})
			if err != nil {
				return err
			}
			norm := left.Clone()
			norm.NormalizeRows()

			truth := make([]map[int]bool, nq)
			for qi := 0; qi < nq; qi++ {
				top := exactTopIDs(rowsOfMatrix(norm), queries.Row(qi), k)
				truth[qi] = make(map[int]bool, k)
				for _, id := range top {
					truth[qi][id] = true
				}
			}
			probeRecall := func() (float64, time.Duration, error) {
				hits, total := 0, 0
				start := time.Now()
				for qi := 0; qi < nq; qi++ {
					res, err := ix.Search(queries.Row(qi), k, ivf.PQSearchOptions{NProbe: ix.NLists() / 2, RerankC: 8 * k})
					if err != nil {
						return 0, 0, err
					}
					for _, r := range res {
						if truth[qi][r.ID] {
							hits++
						}
					}
					total += k
				}
				return float64(hits) / float64(total), time.Since(start), nil
			}
			adcRecall, _, err := probeRecall()
			if err != nil {
				return err
			}
			if err := ix.AttachRerank(norm); err != nil {
				return err
			}
			rerankRecall, dProbe, err := probeRecall()
			if err != nil {
				return err
			}

			rep.PQIVF.BytesPerVector = float64(ix.SizeBytes()) / float64(n)
			rep.PQIVF.CompressionVsFlat = float64(norm.SizeBytes()) / float64(ix.SizeBytes())
			rep.PQIVF.RecallAt10ADC = adcRecall
			rep.PQIVF.RecallAt10Reranked = rerankRecall
			if dProbe > 0 {
				rep.PQIVF.ProbeQPS = float64(nq) / dProbe.Seconds()
			}
			fmt.Fprintf(w, "\nPQ-IVF (M=8, K=%d, nprobe=%d, rerank C=%d): %.1f bytes/vec (%.1fx vs flat), recall@10 %.3f ADC-only -> %.3f reranked, %.0f probes/s\n",
				centroids, ix.NLists()/2, 8*k,
				rep.PQIVF.BytesPerVector, rep.PQIVF.CompressionVsFlat, adcRecall, rerankRecall, rep.PQIVF.ProbeQPS)
			fmt.Fprintln(w, "Shape check: each rung divides storage; recall stays ~1 at the scan rungs (bounded error) and the rerank pass recovers what ADC loses.")

			if cfg.JSONDir != "" {
				path := filepath.Join(cfg.JSONDir, "BENCH_quant.json")
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					return fmt.Errorf("bench: writing %s: %w", path, err)
				}
				fmt.Fprintf(w, "wrote %s\n", path)
			}
			return nil
		},
	}
}

// rowsOfMatrix adapts a matrix to the row-slice shape exactTopIDs takes.
func rowsOfMatrix(m *mat.Matrix) [][]float32 {
	out := make([][]float32, m.Rows())
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

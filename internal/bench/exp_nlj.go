package bench

import (
	"context"
	"fmt"
	"io"

	"ejoin/internal/core"
	"ejoin/internal/model"
	"ejoin/internal/vec"
	"ejoin/internal/workload"
)

// expFig8 regenerates Figure 8: the impact of logical (prefetch) and
// physical (SIMD) optimization on the NLJ formulation. The naive variants
// embed per pair; prefetch embeds once per tuple. The paper's orders-of-
// magnitude gap comes from the quadratic model cost, and SIMD only helps
// once the logical bottleneck is removed.
func expFig8() Experiment {
	return Experiment{
		Name:        "fig8",
		Paper:       "Figure 8",
		Description: "Logical (prefetch) x physical (SIMD) optimization of the E-NLJ; 100-D vectors. Paper sizes 1k/10k scaled down (naive is quadratic in model calls by design).",
		Run: func(w io.Writer, cfg Config) error {
			inner, err := model.NewHashEmbedder(100)
			if err != nil {
				return err
			}
			ctx := context.Background()
			shapes := []struct{ nr, ns int }{
				{cfg.size(100), cfg.size(100)},
				{cfg.size(300), cfg.size(100)},
				{cfg.size(300), cfg.size(300)},
			}
			t := newTable("|R| x |S|", "NO-SIMD [ms]", "SIMD [ms]", "Prefetch NO-SIMD [ms]", "Prefetch SIMD [ms]", "Naive/Prefetch")
			for _, sh := range shapes {
				left := workload.Strings(cfg.Seed, sh.nr, nil)
				right := workload.Strings(cfg.Seed+1, sh.ns, nil)
				var durs [4]float64
				cells := make([]string, 0, 6)
				cells = append(cells, fmt.Sprintf("%dx%d", sh.nr, sh.ns))
				for i, variant := range []struct {
					prefetch bool
					kernel   vec.Kernel
				}{
					{false, vec.KernelScalar},
					{false, vec.KernelSIMD},
					{true, vec.KernelScalar},
					{true, vec.KernelSIMD},
				} {
					opts := core.Options{Kernel: variant.kernel, Threads: cfg.threads()}
					d, err := timed(func() error {
						if variant.prefetch {
							_, err := core.PrefetchNLJ(ctx, inner, left, right, 0.8, opts)
							return err
						}
						_, err := core.NaiveNLJ(ctx, inner, left, right, 0.8, opts)
						return err
					})
					if err != nil {
						return err
					}
					durs[i] = float64(d.Microseconds()) / 1000
					cells = append(cells, ms(d))
				}
				cells = append(cells, ratio(durs[1], durs[3]))
				t.addRow(cells...)
			}
			t.print(w)
			fmt.Fprintln(w, "\nShape check: prefetch beats naive by a growing factor; SIMD only pays off after prefetch removes the model bottleneck.")
			return nil
		},
	}
}

// expFig9 regenerates Figure 9: thread scalability of the optimized NLJ,
// SIMD vs NO-SIMD, rescaled from the paper's 48 hardware threads to the
// host's.
func expFig9() Experiment {
	return Experiment{
		Name:        "fig9",
		Paper:       "Figure 9",
		Description: "Optimized (prefetched) NLJ scalability with thread count, 100-D vectors, SIMD vs NO-SIMD kernels.",
		Run: func(w io.Writer, cfg Config) error {
			n := cfg.size(2000)
			left := workload.Vectors(cfg.Seed, n, 100)
			right := workload.Vectors(cfg.Seed+1, n, 100)
			ctx := context.Background()
			maxT := cfg.threads()
			var threadAxis []int
			for th := 1; th <= maxT; th *= 2 {
				threadAxis = append(threadAxis, th)
			}
			if threadAxis[len(threadAxis)-1] != maxT {
				threadAxis = append(threadAxis, maxT)
			}
			threadAxis = append(threadAxis, maxT*2) // oversubscription point

			t := newTable("Threads", "SIMD [ms]", "NO-SIMD [ms]", "SIMD speedup vs 1T")
			var simd1 float64
			for _, th := range threadAxis {
				dS, err := timed(func() error {
					_, err := core.NLJ(ctx, left, right, 0.8, core.Options{Kernel: vec.KernelSIMD, Threads: th})
					return err
				})
				if err != nil {
					return err
				}
				dN, err := timed(func() error {
					_, err := core.NLJ(ctx, left, right, 0.8, core.Options{Kernel: vec.KernelScalar, Threads: th})
					return err
				})
				if err != nil {
					return err
				}
				if simd1 == 0 {
					simd1 = float64(dS.Microseconds())
				}
				t.addRow(fmt.Sprintf("%d", th), ms(dS), ms(dN), ratio(simd1, float64(dS.Microseconds())))
			}
			t.print(w)
			fmt.Fprintf(w, "\n(%dx%d join; host has %d scheduler threads vs the paper's 48.)\n", n, n, maxT)
			return nil
		},
	}
}

// expFig10 regenerates Figure 10: optimized NLJ across input shapes —
// execution time scales with the number of operations, and keeping the
// smaller relation in the inner loop wins (paper: up to ~35%).
func expFig10() Experiment {
	return Experiment{
		Name:        "fig10",
		Paper:       "Figure 10",
		Description: "Optimized NLJ with varying |R|x|S| shapes, 100-D: time scales with #operations; smaller inner relation is faster.",
		Run: func(w io.Writer, cfg Config) error {
			ctx := context.Background()
			shapes := []struct{ nr, ns int }{
				// ~1e6 pair groups
				{cfg.size(1000), cfg.size(1000)},
				{cfg.size(10000), cfg.size(100)},
				{cfg.size(100), cfg.size(10000)},
				// ~1e7 pair groups
				{cfg.size(10000), cfg.size(1000)},
				{cfg.size(1000), cfg.size(10000)},
				// ~1e8 pair groups
				{cfg.size(10000), cfg.size(10000)},
				{cfg.size(100000), cfg.size(1000)},
				{cfg.size(1000), cfg.size(100000)},
			}
			t := newTable("|R| x |S|", "Pairs", "Time [ms]", "ns/pair")
			for _, sh := range shapes {
				left := workload.Vectors(cfg.Seed, sh.nr, 100)
				right := workload.Vectors(cfg.Seed+1, sh.ns, 100)
				d, err := timed(func() error {
					_, err := core.NLJ(ctx, left, right, 0.8, core.Options{Kernel: vec.KernelSIMD, Threads: cfg.threads()})
					return err
				})
				if err != nil {
					return err
				}
				pairs := int64(sh.nr) * int64(sh.ns)
				t.addRow(fmt.Sprintf("%dx%d", sh.nr, sh.ns), fmt.Sprintf("%d", pairs), ms(d), nsPerElem(d, pairs))
			}
			t.print(w)
			fmt.Fprintln(w, "\nShape check: equal-pair shapes take similar time; big-outer/small-inner beats small-outer/big-inner.")
			return nil
		},
	}
}

package bench

import (
	"context"
	"fmt"
	"io"
	"strings"

	"ejoin/internal/core"
	"ejoin/internal/hnsw"
	"ejoin/internal/model"
	"ejoin/internal/workload"
)

// expTable1 regenerates Table I: the qualitative scan-vs-index contrast,
// grounded with a measured exemplar (exactness and probe sub-linearity).
func expTable1() Experiment {
	return Experiment{
		Name:        "table1",
		Paper:       "Table I",
		Description: "Index versus scan-based vector join operator: qualitative contrast + measured accuracy/cost evidence.",
		Run: func(w io.Writer, cfg Config) error {
			t := newTable("", "Scan Join", "Index Join")
			t.addRow("Accuracy", "Exact", "Approximate")
			t.addRow("Filtering", "Full Relational", "Vector Similarity & Pre-Filtering")
			t.addRow("Cost", "Compute & Scan", "Build & Compute & Probe")
			t.addRow("Flexibility", "Any Expression", "Limited, Construction-Time Distance")
			t.print(w)

			// Measured evidence on a small instance.
			n := cfg.size(2000)
			dim := 32
			right := workload.Vectors(cfg.Seed, n, dim)
			left := workload.Vectors(cfg.Seed+1, cfg.size(50), dim)
			idx, err := core.BuildIndex(right, hnsw.Config{M: 8, EfConstruction: 64, EfSearch: 32, Seed: cfg.Seed})
			if err != nil {
				return err
			}
			ctx := context.Background()
			exact, err := core.TensorTopK(ctx, left, right, 5, core.Options{Threads: cfg.threads()})
			if err != nil {
				return err
			}
			before := idx.DistanceCalls()
			approx, err := core.IndexJoin(ctx, left, idx, core.IndexJoinCondition{K: 5, MinSim: -2}, core.Options{Threads: cfg.threads()})
			if err != nil {
				return err
			}
			probeCost := idx.DistanceCalls() - before
			exactSet := map[[2]int]bool{}
			for _, m := range exact.Matches {
				exactSet[[2]int{m.Left, m.Right}] = true
			}
			hits := 0
			for _, m := range approx.Matches {
				if exactSet[[2]int{m.Left, m.Right}] {
					hits++
				}
			}
			fmt.Fprintf(w, "\nMeasured (|S|=%d, top-5): scan comparisons/probe=%d (exact), index comparisons/probe=%d (recall=%.2f)\n",
				n, n, probeCost/int64(left.Rows()), float64(hits)/float64(len(exact.Matches)))
			return nil
		},
	}
}

// expTable2 regenerates Table II: semantic top-15 matches for the sample
// words under the FastText stand-in.
func expTable2() Experiment {
	return Experiment{
		Name:        "table2",
		Paper:       "Table II",
		Description: "Semantic matching: top-15 vocabulary neighbors of sample words (dbms, postgres, clothes) under the embedding model.",
		Run: func(w io.Writer, cfg Config) error {
			vocab, _ := workload.TableIIVocabulary()
			m, err := workload.TableIIModel(100)
			if err != nil {
				return err
			}
			lookup, err := model.BuildLookupTable(m, vocab)
			if err != nil {
				return err
			}
			t := newTable("Word", "Top-15 Model Matches")
			for _, q := range workload.TableIIWords {
				e, err := m.Embed(q)
				if err != nil {
					return err
				}
				top := lookup.TopK(e, 16)
				var names []string
				for _, s := range top {
					wrd, _ := lookup.Decode(s.ID)
					if wrd == q {
						continue // the query itself
					}
					names = append(names, wrd)
					if len(names) == 15 {
						break
					}
				}
				t.addRow(q, strings.Join(names, ", "))
			}
			t.print(w)
			return nil
		},
	}
}

// expCostModel validates Section IV-A empirically: measured model-call
// counts for naive vs prefetch joins against the cost model's predictions.
func expCostModel() Experiment {
	return Experiment{
		Name:        "costmodel",
		Paper:       "Section IV-A",
		Description: "Cost model validation: measured model invocations of naive (|R||S| pairs, 2 calls each) vs prefetch (|R|+|S|) joins.",
		Run: func(w io.Writer, cfg Config) error {
			inner, err := model.NewHashEmbedder(32)
			if err != nil {
				return err
			}
			counted := model.NewCountingModel(inner)
			nr, ns := cfg.size(40), cfg.size(60)
			left := workload.Strings(cfg.Seed, nr, nil)
			right := workload.Strings(cfg.Seed+1, ns, nil)
			ctx := context.Background()

			t := newTable("Join", "Predicted model calls", "Measured", "Matches")
			counted.Reset()
			resN, err := core.NaiveNLJ(ctx, counted, left, right, 0.8, core.Options{})
			if err != nil {
				return err
			}
			t.addRow("Naive E-NLJ", fmt.Sprintf("2*|R|*|S| = %d", 2*nr*ns),
				fmt.Sprintf("%d", counted.Calls()), fmt.Sprintf("%d", len(resN.Matches)))

			counted.Reset()
			resP, err := core.PrefetchNLJ(ctx, counted, left, right, 0.8, core.Options{Threads: cfg.threads()})
			if err != nil {
				return err
			}
			t.addRow("Prefetch E-NLJ", fmt.Sprintf("|R|+|S| = %d", nr+ns),
				fmt.Sprintf("%d", counted.Calls()), fmt.Sprintf("%d", len(resP.Matches)))
			t.print(w)

			if len(resN.Matches) != len(resP.Matches) {
				return fmt.Errorf("result mismatch: naive %d vs prefetch %d", len(resN.Matches), len(resP.Matches))
			}
			fmt.Fprintf(w, "\nResults identical (%d matches); only the model-access pattern differs.\n", len(resN.Matches))
			return nil
		},
	}
}

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ejoin/internal/model"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
	"ejoin/internal/service"
	"ejoin/internal/shard"
	"ejoin/internal/workload"
)

// shardBackend is what the experiment drives: a single engine or a
// shard router, both behind the same ingest/query surface.
type shardBackend interface {
	RegisterCSVWithPrecision(name string, schema relational.Schema, r io.Reader, replace bool, prec quant.Precision) (int, error)
	Query(ctx context.Context, req service.QueryRequest) (*service.QueryResult, error)
	Close() error
}

// shardConfigResult is one deployment shape's measurement.
type shardConfigResult struct {
	Label           string  `json:"label"`
	Shards          int     `json:"shards"`
	Partitioner     string  `json:"partitioner,omitempty"`
	ColdQPS         float64 `json:"cold_qps"`
	WarmQPS         float64 `json:"warm_qps"`
	WarmP95Ms       float64 `json:"warm_p95_ms"`
	WarmModelCalls  int64   `json:"warm_model_calls"`
	PartitionSkew   float64 `json:"partition_skew,omitempty"`
	MatchesPerQuery int     `json:"matches_per_query"`
}

// shardReport is the machine-readable result, written to BENCH_shard.json.
type shardReport struct {
	Clients     int                 `json:"clients"`
	RowsPerSide int                 `json:"rows_per_side"`
	// GOMAXPROCS contextualizes the speedup: fan-out buys warm throughput
	// only when there are cores to scatter across; on a single-core host
	// the overhead makes the ratio land below 1 by construction.
	GOMAXPROCS int `json:"gomaxprocs"`
	Uniform     []shardConfigResult `json:"uniform"`
	// Skewed re-runs the sharded shapes on a Zipf-duplicated corpus: the
	// partition-skew sensitivity series (duplicate keys co-locate, so
	// per-shard row counts diverge and the slowest shard gates the merge).
	Skewed []shardConfigResult `json:"skewed"`
	// WarmSpeedupN4 is warm sharded (hash, N=4) QPS over unsharded.
	WarmSpeedupN4 float64 `json:"warm_qps_n4_over_unsharded"`
}

// expShard measures scatter-gather sharding: QPS and p95 vs shard count
// on a uniform corpus, then partition-skew sensitivity on a Zipf-
// duplicated corpus. Every shape must return the identical match set —
// sharding is an execution choice, never a result change.
func expShard() Experiment {
	return Experiment{
		Name:        "shard",
		Paper:       "Sharding (new)",
		Description: "In-process shard router vs a single engine: QPS/p95 by shard count and partitioner, uniform and skewed corpora.",
		Run: func(w io.Writer, cfg Config) error {
			const clients = 8
			perClient := 10
			if cfg.Quick {
				perClient = 3
			}
			rows := cfg.size(240)

			uniformL := workload.Strings(cfg.Seed, rows, nil)
			uniformR := workload.Strings(cfg.Seed+1, rows, nil)
			// Skewed corpus: draw rows Zipf-style from a small vocabulary so
			// duplicate keys pile onto whichever shard owns them.
			vocab := workload.Strings(cfg.Seed+2, 32, nil)
			skewedL := make([]string, rows)
			skewedR := make([]string, rows)
			for i, z := range workload.Zipf(cfg.Seed+3, rows, uint64(len(vocab)), 1.4) {
				skewedL[i] = vocab[z]
			}
			for i, z := range workload.Zipf(cfg.Seed+4, rows, uint64(len(vocab)), 1.4) {
				skewedR[i] = vocab[z]
			}

			queries := []string{
				"SELECT * FROM left JOIN right ON SIM(left.text, right.text) >= 0.80",
				"SELECT * FROM left JOIN right ON SIM(left.text, right.text) >= 0.85",
				"SELECT * FROM left JOIN right ON TOPK(left.text, right.text, 3)",
			}
			canonical := queries[0]

			phase := func(b shardBackend, counting *model.CountingModel) (float64, float64, int64, error) {
				counting.Reset()
				latencies := make([][]time.Duration, clients)
				var wg sync.WaitGroup
				errs := make(chan error, clients)
				start := time.Now()
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						for i := 0; i < perClient; i++ {
							q := queries[(c+i)%len(queries)]
							t0 := time.Now()
							if _, err := b.Query(context.Background(), service.QueryRequest{SQL: q}); err != nil {
								errs <- err
								return
							}
							latencies[c] = append(latencies[c], time.Since(t0))
						}
					}(c)
				}
				wg.Wait()
				wall := time.Since(start)
				close(errs)
				for err := range errs {
					return 0, 0, 0, err
				}
				var all []time.Duration
				for _, l := range latencies {
					all = append(all, l...)
				}
				sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
				return float64(len(all)) / wall.Seconds(), pctMs(all, 0.95), counting.Calls(), nil
			}

			csvFor := func(vals []string) string {
				var sb strings.Builder
				sb.WriteString("text\n")
				for _, v := range vals {
					sb.WriteString(v)
					sb.WriteByte('\n')
				}
				return sb.String()
			}
			schema := relational.Schema{{Name: "text", Type: relational.String}}

			run := func(label string, shards int, part string, left, right []string) (shardConfigResult, error) {
				base, err := model.NewHashEmbedder(100)
				if err != nil {
					return shardConfigResult{}, err
				}
				counting := model.NewCountingModel(model.NewLatencyModel(base, 20*time.Microsecond))
				ecfg := service.Config{Model: counting, Threads: cfg.threads()}
				var (
					b      shardBackend
					router *shard.Router
				)
				if shards > 1 {
					router, err = shard.Open(shard.Config{Shards: shards, Partitioner: part, Engine: ecfg})
					b = router
				} else {
					b, err = service.NewEngine(ecfg)
				}
				if err != nil {
					return shardConfigResult{}, err
				}
				defer b.Close()
				for name, vals := range map[string][]string{"left": left, "right": right} {
					if _, err := b.RegisterCSVWithPrecision(name, schema, strings.NewReader(csvFor(vals)), false, quant.PrecisionAuto); err != nil {
						return shardConfigResult{}, err
					}
				}
				res := shardConfigResult{Label: label, Shards: shards, Partitioner: part}
				if res.ColdQPS, _, _, err = phase(b, counting); err != nil {
					return res, err
				}
				var warmCalls int64
				if res.WarmQPS, res.WarmP95Ms, warmCalls, err = phase(b, counting); err != nil {
					return res, err
				}
				res.WarmModelCalls = warmCalls
				canon, err := b.Query(context.Background(), service.QueryRequest{SQL: canonical})
				if err != nil {
					return res, err
				}
				res.MatchesPerQuery = len(canon.Matches)
				if router != nil {
					res.PartitionSkew = router.Stats().PartitionSkew
				}
				return res, nil
			}

			var rep shardReport
			rep.Clients = clients
			rep.RowsPerSide = rows
			rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
			for _, shape := range []struct {
				label string
				n     int
				part  string
			}{
				{"unsharded", 1, ""},
				{"hash-2", 2, "hash"},
				{"hash-4", 4, "hash"},
				{"centroid-4", 4, "centroid"},
			} {
				res, err := run(shape.label, shape.n, shape.part, uniformL, uniformR)
				if err != nil {
					return fmt.Errorf("uniform %s: %w", shape.label, err)
				}
				rep.Uniform = append(rep.Uniform, res)
			}
			for _, shape := range []struct {
				label string
				n     int
				part  string
			}{
				{"hash-4", 4, "hash"},
				{"centroid-4", 4, "centroid"},
			} {
				res, err := run(shape.label, shape.n, shape.part, skewedL, skewedR)
				if err != nil {
					return fmt.Errorf("skewed %s: %w", shape.label, err)
				}
				rep.Skewed = append(rep.Skewed, res)
			}
			rep.WarmSpeedupN4 = rep.Uniform[2].WarmQPS / rep.Uniform[0].WarmQPS

			t := newTable("Corpus", "Shape", "Cold QPS", "Warm QPS", "Warm p95 [ms]", "Skew", "Matches")
			for _, res := range rep.Uniform {
				t.addRow("uniform", res.Label, fmt.Sprintf("%.1f", res.ColdQPS),
					fmt.Sprintf("%.1f", res.WarmQPS), fmt.Sprintf("%.2f", res.WarmP95Ms),
					fmt.Sprintf("%.2f", res.PartitionSkew), fmt.Sprint(res.MatchesPerQuery))
			}
			for _, res := range rep.Skewed {
				t.addRow("skewed", res.Label, fmt.Sprintf("%.1f", res.ColdQPS),
					fmt.Sprintf("%.1f", res.WarmQPS), fmt.Sprintf("%.2f", res.WarmP95Ms),
					fmt.Sprintf("%.2f", res.PartitionSkew), fmt.Sprint(res.MatchesPerQuery))
			}
			t.print(w)
			fmt.Fprintf(w, "\nwarm QPS hash-4 / unsharded: %.2fx (GOMAXPROCS=%d; >= 1 needs cores to scatter across)\n",
				rep.WarmSpeedupN4, rep.GOMAXPROCS)
			for _, res := range rep.Uniform[1:] {
				if res.MatchesPerQuery != rep.Uniform[0].MatchesPerQuery {
					fmt.Fprintf(w, "WARNING: %s returned %d matches, unsharded %d — sharding changed results\n",
						res.Label, res.MatchesPerQuery, rep.Uniform[0].MatchesPerQuery)
				}
				if res.WarmModelCalls != 0 {
					fmt.Fprintf(w, "WARNING: %s warm phase made %d model calls; expected 0\n", res.Label, res.WarmModelCalls)
				}
			}

			if cfg.JSONDir != "" {
				path := filepath.Join(cfg.JSONDir, "BENCH_shard.json")
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					return fmt.Errorf("bench: writing %s: %w", path, err)
				}
				fmt.Fprintf(w, "wrote %s\n", path)
			}
			return nil
		},
	}
}

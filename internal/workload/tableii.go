package workload

import "ejoin/internal/model"

// TableIIWords are the sample query words of the paper's Table II.
var TableIIWords = []string{"dbms", "postgres", "clothes"}

// TableIIVocabulary reproduces the vocabulary neighborhoods of Table II:
// for each query word, the terms the paper's Wikipedia-trained FastText
// model surfaced in its top-15, plus filler vocabulary that must NOT rank.
// Where the paper's model had learned pure semantics (e.g. dbms→nosql,
// clothes→dresses: no shared subwords), our substitution encodes them as
// synonym clusters (see DESIGN.md, substitution 1).
func TableIIVocabulary() (vocab []string, clusters map[string][]string) {
	neighborhoods := map[string][]string{
		"dbms": {
			"rdbms", "nosql", "dbmss", "postgresql", "rdbmss", "sql",
			"dbmses", "sqlite", "dataflow", "ordbms", "oodbms", "couchdb",
			"mysql", "ldap", "oltp",
		},
		"postgres": {
			"postgre", "postgresql", "dbms", "rdbmss", "sqlite", "dbmss",
			"odbc", "backend", "rdbms", "rdbmses", "postgis", "couchdb",
			"mysql",
		},
		"clothes": {
			"dresses", "clothing", "garments", "underwear", "bedclothes",
			"undergarments", "towels", "underwears", "scarves", "shoes",
			"nightgowns", "clothings", "bathrobes", "underclothes",
		},
	}
	filler := []string{
		"giraffe", "quantum", "mountain", "river", "painting", "battle",
		"orchestra", "molecule", "senate", "harbor", "glacier", "novel",
		"stadium", "comet", "bridge", "violin", "pepper", "walnut",
	}

	seen := map[string]bool{}
	add := func(w string) {
		if !seen[w] {
			seen[w] = true
			vocab = append(vocab, w)
		}
	}
	clusters = map[string][]string{
		// Database technology cluster: semantically related systems that
		// share few or no subwords with the query terms.
		"dbtech": {
			"dbms", "rdbms", "nosql", "sql", "sqlite", "couchdb", "mysql",
			"ldap", "oltp", "dataflow", "postgres", "postgre", "postgresql",
			"odbc", "backend", "postgis", "ordbms", "oodbms", "dbmss",
			"rdbmss", "dbmses", "rdbmses",
		},
		// Garment cluster.
		"garment": {
			"clothes", "dresses", "clothing", "garments", "underwear",
			"bedclothes", "undergarments", "towels", "underwears",
			"scarves", "shoes", "nightgowns", "clothings", "bathrobes",
			"underclothes",
		},
	}
	for _, q := range TableIIWords {
		add(q)
		for _, w := range neighborhoods[q] {
			add(w)
		}
	}
	for _, w := range filler {
		add(w)
	}
	return vocab, clusters
}

// TableIIModel builds the embedding model used to regenerate Table II: the
// hash embedder with the Table II synonym clusters (our stand-in for the
// Wikipedia-trained FastText).
func TableIIModel(dim int) (*model.HashEmbedder, error) {
	_, clusters := TableIIVocabulary()
	return model.NewHashEmbedder(dim,
		model.WithSynonyms(clusters),
		model.WithClusterWeight(2.0),
	)
}

// TableIIExpected maps each query word to terms that must appear among its
// top matches: the subword-reinforced subset of the paper's lists, which is
// stable under the hash model (pure-cluster members like nosql land in the
// top-15 only up to tie-order among cluster peers).
func TableIIExpected() map[string][]string {
	return map[string][]string{
		"dbms":     {"rdbms", "dbmss", "oodbms", "ordbms"},
		"postgres": {"postgre", "postgresql", "postgis"},
		"clothes":  {"clothing", "clothings", "dresses", "garments"},
	}
}

// TableIICluster returns the cluster label whose members should dominate
// the query word's top-15 (the shape check: semantic neighbors in, filler
// out).
func TableIICluster(query string) string {
	if query == "clothes" {
		return "garment"
	}
	return "dbtech"
}

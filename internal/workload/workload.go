// Package workload generates the synthetic datasets of the evaluation:
// seeded random embeddings (Figures 8-17 use synthetic vectors with a fixed
// RNG seed "for reproducibility"), a Wikipedia-like vocabulary with
// misspellings, plural forms, and synonym clusters (Table II), and
// selectivity-controlled relational columns (Figures 15-17).
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"ejoin/internal/mat"
	"ejoin/internal/relational"
)

// Vectors returns n unit-norm random embeddings of the given
// dimensionality, deterministic in seed.
func Vectors(seed int64, n, dim int) *mat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := mat.New(n, dim)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	m.NormalizeRows()
	return m
}

// CorrelatedVectors returns n unit vectors drawn near k cluster centers so
// that similarity joins over them have non-trivial selectivity (pure random
// high-dimensional vectors are all near-orthogonal). noise controls spread:
// 0 collapses onto centers, large values approach uniform.
func CorrelatedVectors(seed int64, n, dim, k int, noise float64) *mat.Matrix {
	return CorrelatedVectorsFrom(seed, seed+1, n, dim, k, noise)
}

// CorrelatedVectorsFrom is CorrelatedVectors with the cluster centers
// derived from a separate seed, so two relations can share centers (and
// therefore have cross-relation matches) while drawing independent
// members.
func CorrelatedVectorsFrom(seed, centersSeed int64, n, dim, k int, noise float64) *mat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	centers := Vectors(centersSeed, k, dim)
	m := mat.New(n, dim)
	for i := 0; i < n; i++ {
		c := centers.Row(rng.Intn(k))
		row := m.Row(i)
		for j := range row {
			row[j] = c[j] + float32(rng.NormFloat64()*noise)
		}
	}
	m.NormalizeRows()
	return m
}

// UniformIntColumn returns n int64 values uniform in [0, card), the
// relational attribute Figures 15-17 filter on: predicate value < sel*card
// has selectivity sel.
func UniformIntColumn(seed int64, n int, card int64) relational.Int64Column {
	rng := rand.New(rand.NewSource(seed))
	col := make(relational.Int64Column, n)
	for i := range col {
		col[i] = rng.Int63n(card)
	}
	return col
}

// SelectivityPredicate returns the predicate over a UniformIntColumn column
// named col that selects approximately the given fraction of rows.
func SelectivityPredicate(col string, card int64, selectivity float64) relational.Pred {
	cut := int64(selectivity * float64(card))
	return relational.Pred{Column: col, Op: relational.LT, Value: cut}
}

// SelectivityBitmap marks approximately selectivity*n rows (exactly those a
// SelectivityPredicate over the same column selects).
func SelectivityBitmap(col relational.Int64Column, card int64, selectivity float64) *relational.Bitmap {
	cut := int64(selectivity * float64(card))
	b := relational.NewBitmap(len(col))
	for i, v := range col {
		if v < cut {
			b.Set(i)
		}
	}
	return b
}

// DateColumn returns n timestamps spread uniformly across the year starting
// at base, deterministic in seed.
func DateColumn(seed int64, n int, base time.Time) relational.TimeColumn {
	rng := rand.New(rand.NewSource(seed))
	col := make(relational.TimeColumn, n)
	year := int64(365 * 24 * time.Hour)
	for i := range col {
		col[i] = base.Add(time.Duration(rng.Int63n(year)))
	}
	return col
}

// VectorTable assembles a table with id, an attr column of the given
// cardinality (for selectivity control), and an embedding vector column.
func VectorTable(seed int64, vecs *mat.Matrix, attrCard int64) (*relational.Table, error) {
	n := vecs.Rows()
	ids := make(relational.Int64Column, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = vecs.Row(i)
	}
	vc, err := relational.NewVectorColumn(rows)
	if err != nil {
		return nil, err
	}
	return relational.NewTable(
		relational.Schema{
			{Name: "id", Type: relational.Int64},
			{Name: "attr", Type: relational.Int64},
			{Name: "emb", Type: relational.Vector},
		},
		[]relational.Column{ids, UniformIntColumn(seed, n, attrCard), vc},
	)
}

// Zipf returns n indexes in [0, card) with Zipfian skew s > 1, for skewed
// string workloads.
func Zipf(seed int64, n int, card uint64, s float64) []int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, card-1)
	out := make([]int, n)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}

// Misspell introduces one deterministic typo (per FastText's robustness
// story): swap, drop, duplicate, or replace one character.
func Misspell(word string, variant int) string {
	if len(word) < 3 {
		return word
	}
	pos := 1 + variant%(len(word)-2)
	switch variant % 4 {
	case 0: // swap adjacent
		b := []byte(word)
		b[pos], b[pos+1] = b[pos+1], b[pos]
		return string(b)
	case 1: // drop
		return word[:pos] + word[pos+1:]
	case 2: // duplicate
		return word[:pos] + word[pos:pos+1] + word[pos:]
	default: // replace with next letter
		b := []byte(word)
		b[pos] = 'a' + (b[pos]-'a'+1)%26
		return string(b)
	}
}

// Strings generates n context-rich strings: base vocabulary words plus
// deterministic misspellings and plural variants, mimicking dirty data
// feeds (Section II-A2).
func Strings(seed int64, n int, vocabulary []string) []string {
	if len(vocabulary) == 0 {
		vocabulary = BaseVocabulary()
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		w := vocabulary[rng.Intn(len(vocabulary))]
		switch rng.Intn(4) {
		case 0:
			out[i] = w
		case 1:
			out[i] = w + "s"
		case 2:
			out[i] = Misspell(w, rng.Intn(8))
		default:
			out[i] = fmt.Sprintf("%s %s", w, vocabulary[rng.Intn(len(vocabulary))])
		}
	}
	return out
}

// BaseVocabulary is a compact vocabulary spanning the domains the paper's
// examples draw from (databases, commerce, general nouns).
func BaseVocabulary() []string {
	return []string{
		"dbms", "postgres", "database", "analytics", "vector", "index",
		"clothes", "dresses", "garments", "shoes", "towels",
		"barbecue", "grilling", "kitchen", "recipe",
		"giraffe", "quantum", "mountain", "river", "painting",
		"transaction", "customer", "review", "social", "media",
	}
}

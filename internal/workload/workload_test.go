package workload

import (
	"testing"
	"time"

	"ejoin/internal/model"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
)

func TestVectorsDeterministic(t *testing.T) {
	a := Vectors(1, 10, 16)
	b := Vectors(1, 10, 16)
	if !vec.Equal(a.Data, b.Data, 0) {
		t.Error("same seed should produce same vectors")
	}
	c := Vectors(2, 10, 16)
	if vec.Equal(a.Data, c.Data, 1e-9) {
		t.Error("different seeds should differ")
	}
	if !a.RowsNormalized(1e-4) {
		t.Error("rows must be unit norm")
	}
}

func TestCorrelatedVectors(t *testing.T) {
	m := CorrelatedVectors(3, 100, 32, 4, 0.05)
	if m.Rows() != 100 || !m.RowsNormalized(1e-4) {
		t.Fatal("shape/norm wrong")
	}
	// With 4 tight clusters over 100 rows, many pairs must be highly
	// similar — unlike pure random vectors.
	high := 0
	for i := 0; i < 50; i++ {
		for j := 50; j < 100; j++ {
			if vec.Dot(vec.KernelSIMD, m.Row(i), m.Row(j)) > 0.9 {
				high++
			}
		}
	}
	if high == 0 {
		t.Error("no similar pairs in clustered data")
	}
	random := Vectors(3, 100, 32)
	highRnd := 0
	for i := 0; i < 50; i++ {
		for j := 50; j < 100; j++ {
			if vec.Dot(vec.KernelSIMD, random.Row(i), random.Row(j)) > 0.9 {
				highRnd++
			}
		}
	}
	if highRnd >= high {
		t.Error("clustered data should have more similar pairs than random")
	}
}

func TestUniformIntColumnAndSelectivity(t *testing.T) {
	col := UniformIntColumn(5, 10000, 1000)
	for _, v := range col {
		if v < 0 || v >= 1000 {
			t.Fatalf("value out of range: %d", v)
		}
	}
	for _, sel := range []float64{0.1, 0.5, 0.9} {
		bm := SelectivityBitmap(col, 1000, sel)
		got := float64(bm.Count()) / float64(len(col))
		if got < sel-0.03 || got > sel+0.03 {
			t.Errorf("selectivity %v: got %v", sel, got)
		}
	}
	// Predicate and bitmap agree.
	tbl, err := relational.NewTable(
		relational.Schema{{Name: "attr", Type: relational.Int64}},
		[]relational.Column{col},
	)
	if err != nil {
		t.Fatal(err)
	}
	pred := SelectivityPredicate("attr", 1000, 0.3)
	selv, err := pred.Eval(tbl)
	if err != nil {
		t.Fatal(err)
	}
	bm := SelectivityBitmap(col, 1000, 0.3)
	if len(selv) != bm.Count() {
		t.Errorf("predicate selects %d, bitmap %d", len(selv), bm.Count())
	}
}

func TestDateColumn(t *testing.T) {
	base := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	col := DateColumn(7, 100, base)
	for _, ts := range col {
		if ts.Before(base) || ts.After(base.AddDate(1, 0, 1)) {
			t.Fatalf("timestamp out of range: %v", ts)
		}
	}
}

func TestVectorTable(t *testing.T) {
	vecs := Vectors(9, 50, 8)
	tbl, err := VectorTable(9, vecs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 50 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	vc, err := tbl.Vectors("emb")
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(vc.Row(7), vecs.Row(7), 0) {
		t.Error("vectors not preserved")
	}
	ids, _ := tbl.Ints("id")
	if ids[49] != 49 {
		t.Error("ids wrong")
	}
}

func TestZipf(t *testing.T) {
	idx := Zipf(11, 10000, 100, 1.5)
	counts := map[int]int{}
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index out of range: %d", i)
		}
		counts[i]++
	}
	if counts[0] <= counts[50] {
		t.Error("Zipf skew missing: rank 0 should dominate")
	}
}

func TestMisspell(t *testing.T) {
	w := "barbecue"
	seen := map[string]bool{}
	for v := 0; v < 8; v++ {
		ms := Misspell(w, v)
		if ms == "" {
			t.Fatal("empty misspelling")
		}
		seen[ms] = true
	}
	if len(seen) < 3 {
		t.Errorf("too few distinct misspellings: %v", seen)
	}
	if Misspell("ab", 0) != "ab" {
		t.Error("short words pass through")
	}
}

func TestStrings(t *testing.T) {
	ss := Strings(13, 500, nil)
	if len(ss) != 500 {
		t.Fatalf("len = %d", len(ss))
	}
	for _, s := range ss {
		if s == "" {
			t.Fatal("empty string generated")
		}
	}
	// Deterministic.
	ss2 := Strings(13, 500, nil)
	for i := range ss {
		if ss[i] != ss2[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestTableIIVocabulary(t *testing.T) {
	vocab, clusters := TableIIVocabulary()
	seen := map[string]bool{}
	for _, w := range vocab {
		if seen[w] {
			t.Errorf("duplicate vocab word %q", w)
		}
		seen[w] = true
	}
	for _, q := range TableIIWords {
		if !seen[q] {
			t.Errorf("query word %q missing from vocabulary", q)
		}
	}
	if len(clusters["dbtech"]) == 0 || len(clusters["garment"]) == 0 {
		t.Error("clusters missing")
	}
}

// TestTableIISemanticMatching is the Table II reproduction in miniature:
// for each query word, the expected neighbors must rank inside the top-15
// of the vocabulary by model similarity, ahead of filler words.
func TestTableIISemanticMatching(t *testing.T) {
	vocab, _ := TableIIVocabulary()
	m, err := TableIIModel(100)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := model.BuildLookupTable(m, vocab)
	if err != nil {
		t.Fatal(err)
	}
	_, clusters := TableIIVocabulary()
	for query, expected := range TableIIExpected() {
		qe, err := m.Embed(query)
		if err != nil {
			t.Fatal(err)
		}
		top := tbl.TopK(qe, 15) // query itself + 14 matches
		names := map[string]int{}
		for rank, s := range top {
			w, _ := tbl.Decode(s.ID)
			names[w] = rank
		}
		for _, want := range expected {
			if _, ok := names[want]; !ok {
				t.Errorf("%s: expected %q in top-15, got %v", query, want, rankedNames(tbl, top))
			}
		}
		for _, noise := range []string{"giraffe", "quantum", "molecule"} {
			if _, ok := names[noise]; ok {
				t.Errorf("%s: filler %q ranked in top-15", query, noise)
			}
		}
		// Shape check: every top-15 entry belongs to the query's semantic
		// cluster (as in the paper, where all of Table II's matches are
		// domain neighbors).
		members := map[string]bool{}
		for _, w := range clusters[TableIICluster(query)] {
			members[w] = true
		}
		for w := range names {
			if !members[w] {
				t.Errorf("%s: top-15 contains non-cluster word %q", query, w)
			}
		}
	}
}

func rankedNames(tbl *model.LookupTable, top []model.ScoredID) []string {
	out := make([]string, len(top))
	for i, s := range top {
		out[i], _ = tbl.Decode(s.ID)
	}
	return out
}

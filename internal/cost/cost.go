// Package cost implements the abstract cost model of Section IV-A and the
// scan-versus-probe access path selection of Section VI-E.
//
// Costs are expressed in abstract work units. As the paper notes, "the cost
// model should be parametrized based on their mutually normalized relative
// performance": Params carries those relative weights, and Calibrate
// measures them on the running machine.
package cost

import (
	"fmt"
	"math"
	"time"

	"ejoin/internal/model"
	"ejoin/internal/quant"
	"ejoin/internal/vec"
)

// Params are the cost-model coefficients, per the paper's notation:
// A (data access per tuple), M (model embedding per tuple), C (comparison
// of one vector pair). Index terms extend the model for Section IV-B.
type Params struct {
	// Access is A: per-tuple data access cost.
	Access float64
	// Model is M: per-tuple embedding cost (lookup or inference).
	Model float64
	// Compare is C: cost of one d-dimensional pair comparison.
	Compare float64
	// TensorSpeedup is how much cheaper a comparison is inside the blocked
	// tensor formulation than in tuple-at-a-time NLJ (cache locality +
	// kernel quality); > 1 means faster.
	TensorSpeedup float64
	// ProbeHop is the cost of one graph hop during an index probe; a probe
	// visits ~ProbeWidth·log2(|S|) nodes.
	ProbeHop float64
	// ProbeWidth scales probe cost with beam width / k.
	ProbeWidth float64
	// Build is the per-tuple index construction cost.
	Build float64
}

// DefaultParams returns coefficients that reproduce the paper's qualitative
// regimes: model ≫ comparison ≫ access, tensor ~5x better cache behavior,
// probes logarithmic in |S| but with a large constant — a top-1 probe with
// pre-filtering costs about as much as a blocked scan of a few hundred
// thousand vectors, which is what places the Figure 15 crossover at
// ~20-30% selectivity.
func DefaultParams() Params {
	return Params{
		Access:        1,
		Model:         200,
		Compare:       25,
		TensorSpeedup: 5,
		ProbeHop:      2000,
		ProbeWidth:    1.5,
		Build:         300,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Access < 0 || p.Model < 0 || p.Compare < 0 || p.Build < 0 {
		return fmt.Errorf("cost: negative coefficients: %+v", p)
	}
	if p.TensorSpeedup <= 0 {
		return fmt.Errorf("cost: TensorSpeedup must be positive, got %v", p.TensorSpeedup)
	}
	if p.ProbeHop < 0 || p.ProbeWidth <= 0 {
		return fmt.Errorf("cost: invalid probe parameters: %+v", p)
	}
	return nil
}

// ESelection is Cost(σ_{E,µ,θ}(R)) = |R|·(A + M + C): scan, embed, apply
// the condition per tuple.
func (p Params) ESelection(n int) float64 {
	return float64(n) * (p.Access + p.Model + p.Compare)
}

// NaiveENLJoin is Cost(R ⋈ S) = |R|·|S|·(A + M + C): the direct NLJ
// extension with per-pair model access (quadratic model cost).
func (p Params) NaiveENLJoin(nr, ns int) float64 {
	return float64(nr) * float64(ns) * (p.Access + p.Model + p.Compare)
}

// PrefetchENLJoin is Cost = |R|·|S|·(A + C) + (|R|+|S|)·M: the logically
// optimized join embedding each tuple exactly once.
func (p Params) PrefetchENLJoin(nr, ns int) float64 {
	return p.PrefetchENLJoinWarm(nr, ns, 0, 0)
}

// PrefetchENLJoinWarm is PrefetchENLJoin under a warm shared embedding
// store: hitR/hitS are the expected cache hit ratios per side, and the
// model term M is paid only for expected misses. With a fully warm cache
// the join cost collapses to its comparison term, which can flip the
// planner's access path choice (scans stop being dominated by E_µ).
func (p Params) PrefetchENLJoinWarm(nr, ns int, hitR, hitS float64) float64 {
	return float64(nr)*float64(ns)*(p.Access+p.Compare) + p.EmbedCost(nr, hitR) + p.EmbedCost(ns, hitS)
}

// TensorJoin is the prefetched join with block-matrix execution: the same
// asymptotic shape with the comparison constant divided by TensorSpeedup.
func (p Params) TensorJoin(nr, ns int) float64 {
	return p.TensorJoinWarm(nr, ns, 0, 0)
}

// TensorJoinWarm is TensorJoin with cache-discounted embedding cost.
func (p Params) TensorJoinWarm(nr, ns int, hitR, hitS float64) float64 {
	return float64(nr)*float64(ns)*(p.Access+p.Compare/p.TensorSpeedup) + p.EmbedCost(nr, hitR) + p.EmbedCost(ns, hitS)
}

// EmbedCost is the expected embedding cost of n tuples under a cache with
// the given expected hit ratio: n·M·(1-hit). hit is clamped to [0, 1];
// a cold (or absent) store is hit=0, reproducing the paper's n·M term.
func (p Params) EmbedCost(n int, hit float64) float64 {
	return float64(n) * p.Model * (1 - clamp01(hit))
}

// IndexProbe is Iprobe(S) for one query: beam-scaled logarithmic traversal.
func (p Params) IndexProbe(ns, k int) float64 {
	if ns <= 1 {
		return p.ProbeHop
	}
	beam := p.ProbeWidth * float64(k)
	if beam < 1 {
		beam = 1
	}
	return p.ProbeHop * beam * math.Log2(float64(ns))
}

// IndexJoin is Cost = |R|·Iprobe(S)·(A + C), per Equation (E-Index Join
// Cost). Embeddings of R still cost |R|·M; the index stores S embeddings.
// Pre-filtering does not reduce probe cost (traversal is still paid) —
// that asymmetry is what moves the crossovers in Figures 15-17.
func (p Params) IndexJoin(nr, ns, k int) float64 {
	return p.IndexJoinWarm(nr, ns, k, 0)
}

// IndexJoinWarm is IndexJoin with the probe side's embedding cost
// discounted by the expected cache hit ratio (the index already stores S
// embeddings, so only R's term is cache-sensitive).
func (p Params) IndexJoinWarm(nr, ns, k int, hitR float64) float64 {
	return float64(nr)*p.IndexProbe(ns, k)*(p.Access+p.Compare) + p.EmbedCost(nr, hitR)
}

// IndexBuild is the one-time construction cost over |S| tuples.
func (p Params) IndexBuild(ns int) float64 {
	return float64(ns) * p.Build
}

// Strategy enumerates physical E-join strategies.
type Strategy int

const (
	// StrategyNaiveNLJ embeds per pair; never chosen, present for explain
	// output and ablation.
	StrategyNaiveNLJ Strategy = iota
	// StrategyNLJ is the prefetched tuple-at-a-time nested loop join.
	StrategyNLJ
	// StrategyTensor is the blocked matrix formulation.
	StrategyTensor
	// StrategyIndex probes a vector index.
	StrategyIndex
)

// String names the strategy as used in plan explain output.
func (s Strategy) String() string {
	switch s {
	case StrategyNaiveNLJ:
		return "NaiveNLJ"
	case StrategyNLJ:
		return "NLJ"
	case StrategyTensor:
		return "TensorJoin"
	case StrategyIndex:
		return "IndexJoin"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Choice is the outcome of access path selection.
type Choice struct {
	Strategy Strategy
	// Estimates maps each considered strategy to its estimated cost.
	Estimates map[Strategy]float64
}

// ChooseJoinStrategy picks the cheapest strategy for joining |R|=nr against
// |S|=ns after relational filtering with the given selectivities, under a
// top-k (k>0) or threshold (k<=0) condition. hasIndex reports whether an
// index over S's embeddings exists (building one mid-query is counted
// against the index strategy).
//
// The decision reproduces the paper's findings: scans win at low
// selectivity (they skip filtered tuples for free, and the tensor
// formulation makes comparisons cheap), index probes win for small k and
// high selectivity over large S, and range (threshold) conditions penalize
// the index (probes must over-fetch).
func (p Params) ChooseJoinStrategy(nr, ns int, selLeft, selRight float64, k int, hasIndex bool) Choice {
	return p.ChooseJoinStrategyWarm(nr, ns, selLeft, selRight, k, hasIndex, 0, 0)
}

// ChooseJoinStrategyWarm is ChooseJoinStrategy under a shared embedding
// store: hitL/hitR are the expected cache hit ratios of the two inputs
// (0 = cold, reproducing ChooseJoinStrategy exactly). A warm cache
// removes the E_µ term from scan strategies but leaves probe traversal
// untouched, shifting the scan-versus-probe crossover of Section VI-E.
func (p Params) ChooseJoinStrategyWarm(nr, ns int, selLeft, selRight float64, k int, hasIndex bool, hitL, hitR float64) Choice {
	fr := int(math.Ceil(float64(nr) * clamp01(selLeft)))
	fs := int(math.Ceil(float64(ns) * clamp01(selRight)))

	est := map[Strategy]float64{
		StrategyNLJ:    p.PrefetchENLJoinWarm(fr, fs, hitL, hitR),
		StrategyTensor: p.TensorJoinWarm(fr, fs, hitL, hitR),
	}

	// Index probes pay traversal over the full S (pre-filter semantics),
	// probe only surviving R tuples, and over-fetch for range conditions.
	probeK := k
	if probeK <= 0 {
		// Threshold probe: emulated with widened top-k (Figure 17); the
		// effective k grows with how many S tuples could qualify.
		probeK = 32
	}
	idxCost := p.IndexJoinWarm(fr, ns, probeK, hitL)
	if k <= 0 {
		// Over-fetch + retry widening for range conditions.
		idxCost *= 2
	}
	if !hasIndex {
		idxCost += p.IndexBuild(ns)
	}
	est[StrategyIndex] = idxCost

	best := StrategyTensor
	for _, s := range []Strategy{StrategyNLJ, StrategyIndex} {
		if est[s] < est[best] {
			best = s
		}
	}
	return Choice{Strategy: best, Estimates: est}
}

// scanCostFactor is the relative per-comparison cost of a scan at each
// precision: comparisons in large joins are memory-bound, so cost tracks
// bytes moved (1, 1/2, 1/4), partially offset by per-element conversion
// or rescaling work the narrower formats pay on the compute side.
func scanCostFactor(p quant.Precision) float64 {
	switch p {
	case quant.PrecisionF16:
		return 0.65
	case quant.PrecisionInt8:
		return 0.45
	default:
		return 1
	}
}

// PrecisionChoice is the outcome of precision selection.
type PrecisionChoice struct {
	Precision quant.Precision
	// Estimates maps each eligible precision to its estimated scan cost;
	// precisions excluded on accuracy grounds are absent.
	Estimates map[quant.Precision]float64
	// FootprintBytes is the chosen precision's resident embedding bytes.
	FootprintBytes int64
}

// ChooseJoinPrecision picks the storage/compute precision for a threshold
// scan join over nr x ns embeddings of the given dimensionality — the
// precision-ladder analogue of ChooseJoinStrategyWarm. Two constraints
// gate each rung before cost comparison:
//
//   - accuracy: a precision is eligible only when its dot-product error
//     bound (quant.Precision.DotErrorBound) is at most slack, the result
//     drift the caller tolerates at the threshold boundary. slack <= 0
//     demands exactness and always selects F32.
//   - memory: when budgetBytes > 0, precisions whose embedding footprint
//     (nr+ns vectors) exceeds the budget are excluded; if no precision
//     fits, the smallest-footprint eligible rung is chosen — degraded,
//     like the admission controller's over-budget clamp, rather than
//     refused. The footprint is the scan's steady-state residency: the
//     executor drops the float32 prefetch once the quantized copies are
//     built, so only the encode pass transiently holds both.
//
// Among survivors the cheapest estimated scan cost wins: comparisons
// scaled by the per-precision byte-traffic factor, plus the one-pass
// encode cost quantization adds per input tuple.
func (p Params) ChooseJoinPrecision(nr, ns, dim int, budgetBytes int64, slack float64) PrecisionChoice {
	if slack < 0 {
		slack = 0
	}
	ladder := []quant.Precision{quant.PrecisionF32, quant.PrecisionF16, quant.PrecisionInt8}
	est := make(map[quant.Precision]float64, len(ladder))
	footprint := func(prec quant.Precision) int64 {
		return int64(nr+ns) * prec.BytesPerVector(dim)
	}

	var eligible []quant.Precision
	for _, prec := range ladder {
		if prec.DotErrorBound(dim) > slack {
			continue
		}
		encode := 0.0
		if prec != quant.PrecisionF32 {
			// Quantizing is one pass over each input tuple's vector.
			encode = float64(nr+ns) * p.Access
		}
		est[prec] = float64(nr)*float64(ns)*p.Compare*scanCostFactor(prec) + encode
		eligible = append(eligible, prec)
	}

	best := quant.PrecisionF32
	fits := func(prec quant.Precision) bool {
		return budgetBytes <= 0 || footprint(prec) <= budgetBytes
	}
	chosen := false
	for _, prec := range eligible {
		if !fits(prec) {
			continue
		}
		if !chosen || est[prec] < est[best] {
			best, chosen = prec, true
		}
	}
	if !chosen {
		// Nothing fits the budget: take the smallest eligible footprint.
		for _, prec := range eligible {
			if !chosen || footprint(prec) < footprint(best) {
				best, chosen = prec, true
			}
		}
	}
	return PrecisionChoice{Precision: best, Estimates: est, FootprintBytes: footprint(best)}
}

// Corrections are multiplicative cardinality adjustments learned from
// executed queries (the feedback loop): observed-over-estimated ratios
// that scale the planner's static inputs before cost comparison. The
// zero-value semantics are deliberate — use NeutralCorrections for "no
// feedback yet".
type Corrections struct {
	// SelLeft/SelRight scale the filter selectivities of the two inputs.
	SelLeft, SelRight float64
	// Rows scales the join's output-cardinality estimate.
	Rows float64
}

// NeutralCorrections is the identity adjustment.
func NeutralCorrections() Corrections {
	return Corrections{SelLeft: 1, SelRight: 1, Rows: 1}
}

// correctionBound caps how far a learned correction may pull an estimate
// in one planning decision: a burst of anomalous queries should bend the
// model, not break it.
const correctionBound = 64

// clampCorrection normalizes one factor: non-positive (unset or junk)
// becomes neutral, and the rest is bounded to [1/64, 64].
func clampCorrection(f float64) float64 {
	if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return 1
	}
	if f > correctionBound {
		return correctionBound
	}
	if f < 1/float64(correctionBound) {
		return 1 / float64(correctionBound)
	}
	return f
}

// Clamped returns the corrections with every factor normalized by
// clampCorrection.
func (c Corrections) Clamped() Corrections {
	return Corrections{
		SelLeft:  clampCorrection(c.SelLeft),
		SelRight: clampCorrection(c.SelRight),
		Rows:     clampCorrection(c.Rows),
	}
}

// ChooseJoinStrategyCorrected is ChooseJoinStrategyWarm with the static
// selectivities scaled by learned corrections first. Corrected
// selectivities stay clamped to [0, 1] inside the chooser.
func (p Params) ChooseJoinStrategyCorrected(nr, ns int, selLeft, selRight float64, k int, hasIndex bool, hitL, hitR float64, corr Corrections) Choice {
	corr = corr.Clamped()
	return p.ChooseJoinStrategyWarm(nr, ns, selLeft*corr.SelLeft, selRight*corr.SelRight, k, hasIndex, hitL, hitR)
}

// ChooseJoinPrecisionCorrected is ChooseJoinPrecision over feedback-
// corrected input cardinalities: each side's row count is scaled by its
// selectivity correction before the ladder weighs scan cost against the
// encode pass. The memory gate still uses the corrected counts — an
// estimate the feedback says is too low would otherwise under-reserve.
func (p Params) ChooseJoinPrecisionCorrected(nr, ns, dim int, budgetBytes int64, slack float64, corr Corrections) PrecisionChoice {
	corr = corr.Clamped()
	cnr := int(math.Ceil(float64(nr) * corr.SelLeft))
	cns := int(math.Ceil(float64(ns) * corr.SelRight))
	return p.ChooseJoinPrecision(cnr, cns, dim, budgetBytes, slack)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Calibrate measures the machine's relative A, M, and C and returns Params
// with the remaining coefficients taken from DefaultParams. m is the model
// whose cost will sit on the query's critical path; dim is the embedding
// dimensionality.
func Calibrate(m model.Model, dim int) (Params, error) {
	p := DefaultParams()
	const rounds = 64

	// C: one d-dim dot product.
	a := make([]float32, dim)
	b := make([]float32, dim)
	for i := range a {
		a[i] = float32(i%7) * 0.25
		b[i] = float32(i%5) * 0.5
	}
	var sink float32
	start := time.Now()
	for i := 0; i < rounds; i++ {
		sink += vec.Dot(vec.KernelSIMD, a, b)
	}
	compare := float64(time.Since(start).Nanoseconds()) / rounds

	// A: one sequential float32 copy of a tuple.
	buf := make([]float32, dim)
	start = time.Now()
	for i := 0; i < rounds; i++ {
		copy(buf, a)
	}
	access := float64(time.Since(start).Nanoseconds()) / rounds

	// M: one model call.
	start = time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := m.Embed("calibration-token"); err != nil {
			return Params{}, fmt.Errorf("cost: calibration embed failed: %w", err)
		}
	}
	modelCost := float64(time.Since(start).Nanoseconds()) / rounds

	_ = sink
	if access <= 0 {
		access = 1
	}
	p.Access = 1
	p.Compare = compare / access
	p.Model = modelCost / access
	if p.Compare <= 0 {
		p.Compare = 1
	}
	if p.Model <= 0 {
		p.Model = 1
	}
	return p, nil
}

package cost

import (
	"testing"

	"ejoin/internal/model"
	"ejoin/internal/quant"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{Access: -1, TensorSpeedup: 1, ProbeWidth: 1},
		{TensorSpeedup: 0, ProbeWidth: 1},
		{TensorSpeedup: 1, ProbeWidth: 0},
		{TensorSpeedup: 1, ProbeWidth: 1, ProbeHop: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestESelectionLinear(t *testing.T) {
	p := DefaultParams()
	if got := p.ESelection(0); got != 0 {
		t.Errorf("ESelection(0) = %v", got)
	}
	c1 := p.ESelection(100)
	c2 := p.ESelection(200)
	if c2 != 2*c1 {
		t.Errorf("not linear: %v vs %v", c1, c2)
	}
}

// TestNaiveVsPrefetch is the central claim of Section IV-A: naive model
// cost is quadratic, prefetch linear, so the gap grows with input size.
func TestNaiveVsPrefetch(t *testing.T) {
	p := DefaultParams()
	sizes := []int{100, 1000, 10000}
	prevRatio := 0.0
	for _, n := range sizes {
		naive := p.NaiveENLJoin(n, n)
		pre := p.PrefetchENLJoin(n, n)
		if pre >= naive {
			t.Fatalf("n=%d: prefetch %v not cheaper than naive %v", n, pre, naive)
		}
		ratio := naive / pre
		if ratio <= prevRatio {
			t.Fatalf("n=%d: gap should grow with size: %v <= %v", n, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestTensorCheaperThanNLJ(t *testing.T) {
	p := DefaultParams()
	for _, n := range []int{100, 10000} {
		if p.TensorJoin(n, n) >= p.PrefetchENLJoin(n, n) {
			t.Errorf("n=%d: tensor not cheaper", n)
		}
	}
}

func TestIndexProbeSublinear(t *testing.T) {
	p := DefaultParams()
	probe1k := p.IndexProbe(1000, 1)
	probe1m := p.IndexProbe(1000000, 1)
	if probe1m >= probe1k*5 {
		t.Errorf("probe cost should grow logarithmically: %v vs %v", probe1k, probe1m)
	}
	if p.IndexProbe(1, 1) != p.ProbeHop {
		t.Error("degenerate index probe")
	}
	// Larger k costs more.
	if p.IndexProbe(10000, 32) <= p.IndexProbe(10000, 1) {
		t.Error("probe cost should grow with k")
	}
	// Beam floor of 1 even with tiny k and width.
	small := Params{ProbeHop: 1, ProbeWidth: 0.001}
	if small.IndexProbe(1000, 1) <= 0 {
		t.Error("beam floor violated")
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		StrategyNaiveNLJ: "NaiveNLJ",
		StrategyNLJ:      "NLJ",
		StrategyTensor:   "TensorJoin",
		StrategyIndex:    "IndexJoin",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d = %q, want %q", s, s.String(), want)
		}
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Error("unknown strategy name")
	}
}

// TestAccessPathCrossover reproduces Figure 15's shape in the model: with
// top-1 conditions, low selectivity favors the scan (tensor), high
// selectivity favors the index.
func TestAccessPathCrossover(t *testing.T) {
	p := DefaultParams()
	nr, ns := 10000, 1000000

	low := p.ChooseJoinStrategy(nr, ns, 0.05, 0.05, 1, true)
	if low.Strategy == StrategyIndex {
		t.Errorf("5%% selectivity should favor scan, got %v (est %v)", low.Strategy, low.Estimates)
	}
	high := p.ChooseJoinStrategy(nr, ns, 1.0, 1.0, 1, true)
	if high.Strategy != StrategyIndex {
		t.Errorf("100%% selectivity top-1 should favor index, got %v (est %v)", high.Strategy, high.Estimates)
	}
}

// TestRangeConditionPenalizesIndex reproduces Figure 17's direction:
// threshold (range) conditions make the index strategy less attractive
// than the equivalent top-k condition.
func TestRangeConditionPenalizesIndex(t *testing.T) {
	p := DefaultParams()
	nr, ns := 10000, 1000000
	topk := p.ChooseJoinStrategy(nr, ns, 1, 1, 1, true)
	rng := p.ChooseJoinStrategy(nr, ns, 1, 1, 0, true)
	if rng.Estimates[StrategyIndex] <= topk.Estimates[StrategyIndex] {
		t.Errorf("range should cost the index more: %v vs %v",
			rng.Estimates[StrategyIndex], topk.Estimates[StrategyIndex])
	}
}

// TestLargerKPenalizesIndex reproduces Figure 16: top-32 shifts the
// crossover toward the scan.
func TestLargerKPenalizesIndex(t *testing.T) {
	p := DefaultParams()
	nr, ns := 10000, 1000000
	k1 := p.ChooseJoinStrategy(nr, ns, 0.5, 0.5, 1, true)
	k32 := p.ChooseJoinStrategy(nr, ns, 0.5, 0.5, 32, true)
	if k32.Estimates[StrategyIndex] <= k1.Estimates[StrategyIndex] {
		t.Error("larger k should cost the index more")
	}
}

func TestMissingIndexAddsBuildCost(t *testing.T) {
	p := DefaultParams()
	with := p.ChooseJoinStrategy(1000, 100000, 1, 1, 1, true)
	without := p.ChooseJoinStrategy(1000, 100000, 1, 1, 1, false)
	if without.Estimates[StrategyIndex] <= with.Estimates[StrategyIndex] {
		t.Error("missing index should add build cost")
	}
}

func TestChooseHandlesDegenerateSelectivity(t *testing.T) {
	p := DefaultParams()
	// Out-of-range selectivities are clamped, not propagated.
	c := p.ChooseJoinStrategy(100, 100, -1, 2, 1, true)
	if c.Estimates[StrategyTensor] < 0 {
		t.Error("negative cost")
	}
	zero := p.ChooseJoinStrategy(0, 0, 0, 0, 1, true)
	if zero.Strategy == StrategyNaiveNLJ {
		t.Error("degenerate inputs should still pick a real strategy")
	}
}

// TestCostMonotonicity: all join costs are non-decreasing in input size.
func TestCostMonotonicity(t *testing.T) {
	p := DefaultParams()
	prevN, prevP, prevT, prevI := 0.0, 0.0, 0.0, 0.0
	for _, n := range []int{10, 100, 1000, 10000} {
		cn := p.NaiveENLJoin(n, n)
		cp := p.PrefetchENLJoin(n, n)
		ct := p.TensorJoin(n, n)
		ci := p.IndexJoin(n, n*10, 1)
		if cn <= prevN || cp <= prevP || ct <= prevT || ci <= prevI {
			t.Fatalf("n=%d: costs not increasing", n)
		}
		prevN, prevP, prevT, prevI = cn, cp, ct, ci
	}
}

func TestCalibrate(t *testing.T) {
	m, err := model.NewHashEmbedder(32)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Calibrate(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Access != 1 {
		t.Errorf("Access should be the unit: %v", p.Access)
	}
	if p.Model <= 0 || p.Compare <= 0 {
		t.Errorf("non-positive calibrated costs: %+v", p)
	}
	// A real embedding model costs far more than one dot product.
	if p.Model < p.Compare {
		t.Errorf("expected model >= compare: %+v", p)
	}
}

func TestCalibrateFailingModel(t *testing.T) {
	inner, _ := model.NewHashEmbedder(8)
	bad := &model.FailingModel{Inner: inner, Match: func(string) bool { return true }, Err: errSentinel}
	if _, err := Calibrate(bad, 8); err == nil {
		t.Error("expected calibration error")
	}
}

type sentinelErr string

func (e sentinelErr) Error() string { return string(e) }

var errSentinel = sentinelErr("calibration failure")

func TestWarmCostsDiscountModelTerm(t *testing.T) {
	p := DefaultParams()
	nr, ns := 1000, 1000

	if got, want := p.PrefetchENLJoinWarm(nr, ns, 0, 0), p.PrefetchENLJoin(nr, ns); got != want {
		t.Errorf("cold warm-variant %v != legacy %v", got, want)
	}
	if got, want := p.TensorJoinWarm(nr, ns, 0, 0), p.TensorJoin(nr, ns); got != want {
		t.Errorf("cold tensor warm-variant %v != legacy %v", got, want)
	}
	if got, want := p.IndexJoinWarm(nr, ns, 4, 0), p.IndexJoin(nr, ns, 4); got != want {
		t.Errorf("cold index warm-variant %v != legacy %v", got, want)
	}

	// A fully warm cache removes exactly the embedding term.
	cold := p.TensorJoin(nr, ns)
	warm := p.TensorJoinWarm(nr, ns, 1, 1)
	if diff := cold - warm; diff != p.EmbedCost(nr+ns, 0) {
		t.Errorf("discount = %v, want %v", diff, p.EmbedCost(nr+ns, 0))
	}
	// Hit ratios outside [0,1] clamp instead of going negative.
	if p.EmbedCost(100, 2) != 0 || p.EmbedCost(100, -1) != p.EmbedCost(100, 0) {
		t.Error("hit ratio not clamped")
	}
}

func TestChooseJoinStrategyWarmCanFlip(t *testing.T) {
	p := DefaultParams()
	// A regime where probes win cold because scans pay the model per run:
	// small surviving R against a large indexed S, small k.
	nr, ns, k := 2000, 2_000_000, 1
	selL := 0.02
	cold := p.ChooseJoinStrategyWarm(nr, ns, selL, 1, k, true, 0, 0)
	if cold.Strategy != StrategyIndex {
		t.Skipf("cold regime did not pick index (%v); parameters shifted", cold.Strategy)
	}
	warm := p.ChooseJoinStrategyWarm(nr, ns, selL, 1, k, true, 1, 1)
	if warm.Estimates[StrategyTensor] >= cold.Estimates[StrategyTensor] {
		t.Errorf("warm tensor estimate did not drop: %v vs %v",
			warm.Estimates[StrategyTensor], cold.Estimates[StrategyTensor])
	}
	if warm.Estimates[StrategyIndex] > cold.Estimates[StrategyIndex] {
		t.Errorf("warm index estimate rose: %v vs %v",
			warm.Estimates[StrategyIndex], cold.Estimates[StrategyIndex])
	}
}

func TestChooseJoinPrecisionExactByDefault(t *testing.T) {
	p := DefaultParams()
	// Zero slack demands exactness: F32 regardless of sizes or budget.
	c := p.ChooseJoinPrecision(10000, 10000, 100, 1<<20, 0)
	if c.Precision != quant.PrecisionF32 {
		t.Fatalf("zero slack chose %v", c.Precision)
	}
	if len(c.Estimates) != 1 {
		t.Fatalf("zero slack should leave only f32 eligible, got %v", c.Estimates)
	}
	// Negative slack clamps to zero rather than excluding everything.
	if c := p.ChooseJoinPrecision(100, 100, 32, 0, -1); c.Precision != quant.PrecisionF32 {
		t.Fatalf("negative slack chose %v", c.Precision)
	}
}

func TestChooseJoinPrecisionSlackUnlocksLadder(t *testing.T) {
	p := DefaultParams()
	nr, ns, dim := 5000, 5000, 100
	// Slack above the f16 bound but below int8's: f16 wins on traffic.
	f16Only := quant.PrecisionF16.DotErrorBound(dim) + 1e-6
	if c := p.ChooseJoinPrecision(nr, ns, dim, 0, f16Only); c.Precision != quant.PrecisionF16 {
		t.Fatalf("f16-slack chose %v (estimates %v)", c.Precision, c.Estimates)
	}
	// Generous slack: int8 is the cheapest scan.
	c := p.ChooseJoinPrecision(nr, ns, dim, 0, 0.05)
	if c.Precision != quant.PrecisionInt8 {
		t.Fatalf("wide slack chose %v (estimates %v)", c.Precision, c.Estimates)
	}
	if len(c.Estimates) != 3 {
		t.Fatalf("expected all three rungs estimated, got %v", c.Estimates)
	}
	if c.Estimates[quant.PrecisionInt8] >= c.Estimates[quant.PrecisionF16] ||
		c.Estimates[quant.PrecisionF16] >= c.Estimates[quant.PrecisionF32] {
		t.Fatalf("estimates not ordered by byte traffic: %v", c.Estimates)
	}
	if c.FootprintBytes != int64(nr+ns)*quant.PrecisionInt8.BytesPerVector(dim) {
		t.Fatalf("footprint %d", c.FootprintBytes)
	}
}

func TestChooseJoinPrecisionBudgetForcesNarrow(t *testing.T) {
	p := DefaultParams()
	nr, ns, dim := 1000, 1000, 100
	f32Bytes := int64(nr+ns) * quant.PrecisionF32.BytesPerVector(dim)
	// Budget admits f16 but not f32; slack admits everything. Int8 both
	// fits and is cheapest.
	c := p.ChooseJoinPrecision(nr, ns, dim, f32Bytes/2, 0.05)
	if c.Precision != quant.PrecisionInt8 {
		t.Fatalf("budgeted choice %v", c.Precision)
	}
	// Budget admits nothing: smallest eligible footprint wins anyway.
	c = p.ChooseJoinPrecision(nr, ns, dim, 1, 0.05)
	if c.Precision != quant.PrecisionInt8 {
		t.Fatalf("over-budget fallback chose %v", c.Precision)
	}
	// Budget admits nothing and slack admits only f32: degrade to f32.
	c = p.ChooseJoinPrecision(nr, ns, dim, 1, 0)
	if c.Precision != quant.PrecisionF32 {
		t.Fatalf("exact over-budget fallback chose %v", c.Precision)
	}
}

package mat

import (
	"fmt"

	"ejoin/internal/vec"
)

// F16Matrix is a dense row-major half-precision matrix: the storage side of
// the paper's half-precision direction (Section V-A2 — FP16 halves memory
// traffic and doubles effective SIMD width on hardware with FP16 support).
// In pure Go the memory saving is real (2 bytes/element) while compute pays
// a conversion cost; the fp16 ablation experiment quantifies the trade.
type F16Matrix struct {
	RowsN int
	ColsN int
	Data  vec.F16Vector
}

// NewF16 allocates a zeroed half-precision matrix.
func NewF16(rows, cols int) *F16Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &F16Matrix{RowsN: rows, ColsN: cols, Data: make(vec.F16Vector, rows*cols)}
}

// EncodeF16 quantizes a float32 matrix to half precision.
func EncodeF16(m *Matrix) *F16Matrix {
	out := NewF16(m.Rows(), m.Cols())
	for i, x := range m.Data {
		out.Data[i] = vec.F16FromFloat32(x)
	}
	return out
}

// Decode converts back to float32 (with quantization loss baked in).
func (m *F16Matrix) Decode() *Matrix {
	out := New(m.RowsN, m.ColsN)
	for i, x := range m.Data {
		out.Data[i] = x.Float32()
	}
	return out
}

// Rows returns the number of rows.
func (m *F16Matrix) Rows() int { return m.RowsN }

// Cols returns the number of columns.
func (m *F16Matrix) Cols() int { return m.ColsN }

// Row returns row i as a half-precision slice aliasing the storage.
func (m *F16Matrix) Row(i int) vec.F16Vector {
	return m.Data[i*m.ColsN : (i+1)*m.ColsN : (i+1)*m.ColsN]
}

// SizeBytes returns the backing storage size (2 bytes per element —
// half the float32 footprint).
func (m *F16Matrix) SizeBytes() int64 {
	return int64(len(m.Data)) * 2
}

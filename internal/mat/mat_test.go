package mat

import (
	"math/rand"
	"testing"

	"ejoin/internal/vec"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Errorf("At = %v", m.At(1, 2))
	}
	r := m.Row(1)
	if len(r) != 3 || r[2] != 5 {
		t.Errorf("Row = %v", r)
	}
	if m.SizeBytes() != 24 {
		t.Errorf("SizeBytes = %d", m.SizeBytes())
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(-1, 2)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 || m.At(2, 1) != 6 {
		t.Errorf("FromRows = %+v", m)
	}
	if _, err := FromRows([][]float32{{1, 2}, {3}}); err == nil {
		t.Error("expected ragged-rows error")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows() != 0 {
		t.Errorf("FromRows(nil) = %v, %v", empty, err)
	}
}

func TestFromFlat(t *testing.T) {
	m, err := FromFlat(2, 2, []float32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At = %v", m.At(1, 0))
	}
	if _, err := FromFlat(2, 2, []float32{1}); err == nil {
		t.Error("expected length error")
	}
}

func TestSlice(t *testing.T) {
	m, _ := FromRows([][]float32{{1}, {2}, {3}, {4}})
	s := m.Slice(1, 3)
	if s.Rows() != 2 || s.At(0, 0) != 2 || s.At(1, 0) != 3 {
		t.Errorf("Slice = %+v", s)
	}
	// Shares storage.
	s.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Error("Slice must alias parent storage")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad range")
		}
	}()
	m.Slice(3, 1)
}

func TestClone(t *testing.T) {
	m, _ := FromRows([][]float32{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone must not alias")
	}
}

func TestNormalizeRows(t *testing.T) {
	m, _ := FromRows([][]float32{{3, 4}, {0, 0}, {1, 0}})
	m.NormalizeRows()
	if !m.RowsNormalized(1e-5) {
		t.Error("rows not normalized")
	}
	if m.At(1, 0) != 0 || m.At(1, 1) != 0 {
		t.Error("zero row should stay zero")
	}
}

func TestEqualMatrix(t *testing.T) {
	a, _ := FromRows([][]float32{{1, 2}})
	b, _ := FromRows([][]float32{{1, 2.0000001}})
	if !Equal(a, b, 1e-3) {
		t.Error("expected equal")
	}
	c := New(2, 1)
	if Equal(a, c, 1) {
		t.Error("shape mismatch must not be equal")
	}
}

// reference computes r·sᵀ naively for comparison.
func reference(r, s *Matrix) *Matrix {
	d := New(r.Rows(), s.Rows())
	for i := 0; i < r.Rows(); i++ {
		for j := 0; j < s.Rows(); j++ {
			var acc float32
			for k := 0; k < r.Cols(); k++ {
				acc += r.At(i, k) * s.At(j, k)
			}
			d.Set(i, j, acc)
		}
	}
	return d
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func TestMulTransposeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	shapes := []struct{ nr, ns, d int }{
		{1, 1, 1}, {3, 5, 7}, {8, 8, 8}, {17, 33, 100},
		{64, 64, 16}, {65, 63, 5}, {100, 10, 256}, {2, 200, 1},
	}
	for _, sh := range shapes {
		r := randomMatrix(rng, sh.nr, sh.d)
		s := randomMatrix(rng, sh.ns, sh.d)
		want := reference(r, s)
		for _, k := range []vec.Kernel{vec.KernelScalar, vec.KernelSIMD} {
			for _, threads := range []int{1, 2, 4} {
				got, err := MulTranspose(r, s, GemmOptions{Threads: threads, Kernel: k, BlockRows: 16, BlockCols: 16})
				if err != nil {
					t.Fatal(err)
				}
				if !Equal(got, want, 1e-3) {
					t.Fatalf("shape %+v kernel %v threads %d: mismatch", sh, k, threads)
				}
			}
		}
	}
}

func TestMulTransposeErrors(t *testing.T) {
	r := New(2, 3)
	s := New(2, 4)
	if _, err := MulTranspose(r, s, GemmOptions{}); err == nil {
		t.Error("expected inner-dimension error")
	}
	dst := New(1, 1)
	s2 := New(2, 3)
	if err := MulTransposeInto(dst, r, s2, GemmOptions{}); err == nil {
		t.Error("expected dst shape error")
	}
}

func TestMulTransposeEmpty(t *testing.T) {
	r := New(0, 5)
	s := New(3, 5)
	dst := New(0, 3)
	if err := MulTransposeInto(dst, r, s, GemmOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestMulTransposeIdentityProperty(t *testing.T) {
	// For unit-norm rows, diagonal of R·Rᵀ is 1.
	rng := rand.New(rand.NewSource(29))
	r := randomMatrix(rng, 20, 50)
	r.NormalizeRows()
	d, err := MulTranspose(r, r, GemmOptions{Kernel: vec.KernelSIMD})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if got := d.At(i, i); got < 0.999 || got > 1.001 {
			t.Fatalf("diag[%d] = %v", i, got)
		}
	}
	// Symmetry: D[i][j] == D[j][i].
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if diff := d.At(i, j) - d.At(j, i); diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("asymmetry at (%d,%d): %v", i, j, diff)
			}
		}
	}
}

func TestBatchShape(t *testing.T) {
	// Unbounded budget covers whole input.
	rb, sb := BatchShape(100, 200, 0)
	if rb != 100 || sb != 200 {
		t.Errorf("unbounded = %d,%d", rb, sb)
	}
	// Budget larger than needed.
	rb, sb = BatchShape(10, 10, 1<<20)
	if rb != 10 || sb != 10 {
		t.Errorf("big budget = %d,%d", rb, sb)
	}
	// Constrained budget respects the byte bound.
	rb, sb = BatchShape(1000, 1000, 4*100*100)
	if int64(rb)*int64(sb)*4 > 4*100*100 {
		t.Errorf("over budget: %d*%d", rb, sb)
	}
	if rb < 1 || sb < 1 {
		t.Errorf("degenerate shape: %d,%d", rb, sb)
	}
	// Extreme budget still yields at least 1x1.
	rb, sb = BatchShape(1000, 1000, 1)
	if rb != 1 || sb != 1 {
		t.Errorf("tiny budget = %d,%d", rb, sb)
	}
	// Aspect ratio follows inputs.
	rb, sb = BatchShape(10000, 100, 4*1000)
	if rb < sb {
		t.Errorf("aspect not preserved: %d,%d", rb, sb)
	}
}

func TestForEachBlockCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	r := randomMatrix(rng, 37, 8)
	s := randomMatrix(rng, 23, 8)
	want := reference(r, s)

	for _, budget := range []int64{0, 4 * 5 * 5, 4 * 64 * 64, 4} {
		got := New(37, 23)
		seen := 0
		err := ForEachBlock(r, s, BatchOptions{BudgetBytes: budget}, func(block *Matrix, rOff, sOff int) error {
			seen++
			for i := 0; i < block.Rows(); i++ {
				for j := 0; j < block.Cols(); j++ {
					got.Set(rOff+i, sOff+j, block.At(i, j))
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if seen == 0 {
			t.Fatal("no blocks visited")
		}
		if !Equal(got, want, 1e-3) {
			t.Fatalf("budget %d: reassembled result mismatch", budget)
		}
	}
}

func TestForEachBlockExplicitShape(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	r := randomMatrix(rng, 10, 4)
	s := randomMatrix(rng, 10, 4)
	var blocks int
	err := ForEachBlock(r, s, BatchOptions{BatchRows: 3, BatchCols: 4}, func(block *Matrix, rOff, sOff int) error {
		blocks++
		if block.Rows() > 3 || block.Cols() > 4 {
			t.Errorf("block too big: %dx%d", block.Rows(), block.Cols())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// ceil(10/3)*ceil(10/4) = 4*3 = 12 blocks.
	if blocks != 12 {
		t.Errorf("blocks = %d, want 12", blocks)
	}
}

func TestForEachBlockPropagatesError(t *testing.T) {
	r := New(4, 2)
	s := New(4, 2)
	sentinel := errTest("boom")
	err := ForEachBlock(r, s, BatchOptions{BatchRows: 2, BatchCols: 2}, func(*Matrix, int, int) error {
		return sentinel
	})
	if err != sentinel {
		t.Errorf("err = %v", err)
	}
	// Dimension error surfaces too.
	bad := New(4, 3)
	if err := ForEachBlock(r, bad, BatchOptions{}, func(*Matrix, int, int) error { return nil }); err == nil {
		t.Error("expected dim error")
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

func TestForEachBlockEmpty(t *testing.T) {
	r := New(0, 2)
	s := New(4, 2)
	called := false
	if err := ForEachBlock(r, s, BatchOptions{}, func(*Matrix, int, int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("visitor called for empty input")
	}
}

func TestPeakBlockBytes(t *testing.T) {
	// Unbatched: whole matrix.
	if got := PeakBlockBytes(100, 200, BatchOptions{}); got != 4*100*200 {
		t.Errorf("unbatched = %d", got)
	}
	// Budgeted: under the budget.
	budget := int64(4 * 10 * 10)
	if got := PeakBlockBytes(1000, 1000, BatchOptions{BudgetBytes: budget}); got > budget {
		t.Errorf("over budget: %d > %d", got, budget)
	}
	// Explicit shape wins.
	if got := PeakBlockBytes(1000, 1000, BatchOptions{BatchRows: 5, BatchCols: 7}); got != 4*5*7 {
		t.Errorf("explicit = %d", got)
	}
}

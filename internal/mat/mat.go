// Package mat implements the dense linear algebra substrate used by the
// tensor join formulation (paper Section IV-C / V): row-major float32
// matrices and a cache-blocked, parallel similarity GEMM computing
// D = R · Sᵀ block-wise per the Block Matrix Dot Product Decomposition.
//
// The paper uses Intel oneAPI MKL for this role; this package is the
// stdlib-only substitute. It implements the same structural optimizations
// that make BLAS fast on this shape: tuple-boundary blocking so a block of
// S rows stays cache-resident while being reused against a block of R rows,
// unrolled inner kernels, and data-parallel execution across row panels.
package mat

import (
	"fmt"

	"ejoin/internal/vec"
)

// Matrix is a dense row-major float32 matrix. Each row typically holds one
// embedding vector, so Rows is the relation cardinality and Cols the
// embedding dimensionality.
type Matrix struct {
	RowsN int
	ColsN int
	Data  []float32 // len == RowsN*ColsN, row-major
}

// New allocates a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{RowsN: rows, ColsN: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix whose rows are copies of the given equal-length
// vectors. It returns an error if rows have inconsistent lengths.
func FromRows(rows [][]float32) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	d := len(rows[0])
	m := New(len(rows), d)
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("mat: row %d has dim %d, want %d", i, len(r), d)
		}
		copy(m.Data[i*d:(i+1)*d], r)
	}
	return m, nil
}

// FromFlat wraps an existing row-major backing slice without copying.
func FromFlat(rows, cols int, data []float32) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("mat: flat data len %d != %d*%d", len(data), rows, cols)
	}
	return &Matrix{RowsN: rows, ColsN: cols, Data: data}, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.RowsN }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.ColsN }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.ColsN : (i+1)*m.ColsN : (i+1)*m.ColsN]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.ColsN+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.ColsN+j] = v }

// Slice returns a view of rows [lo, hi) sharing storage with m.
func (m *Matrix) Slice(lo, hi int) *Matrix {
	if lo < 0 || hi > m.RowsN || lo > hi {
		panic(fmt.Sprintf("mat: slice [%d,%d) out of range (rows=%d)", lo, hi, m.RowsN))
	}
	return &Matrix{RowsN: hi - lo, ColsN: m.ColsN, Data: m.Data[lo*m.ColsN : hi*m.ColsN]}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.RowsN, m.ColsN)
	copy(out.Data, m.Data)
	return out
}

// NormalizeRows scales every row to unit L2 norm in place (zero rows are
// left untouched). After normalization, cosine similarity of rows reduces to
// the dot product, which is what lets the join run as a plain GEMM.
func (m *Matrix) NormalizeRows() {
	for i := 0; i < m.RowsN; i++ {
		vec.Normalize(m.Row(i))
	}
}

// RowsNormalized reports whether every row is unit-norm within eps
// (zero rows excluded).
func (m *Matrix) RowsNormalized(eps float32) bool {
	for i := 0; i < m.RowsN; i++ {
		r := m.Row(i)
		if vec.Norm(r) == 0 {
			continue
		}
		if !vec.IsNormalized(r, eps) {
			return false
		}
	}
	return true
}

// SizeBytes returns the backing storage size in bytes (4 bytes per FP32),
// the unit used by the memory-budget computations of Section V-B.
func (m *Matrix) SizeBytes() int64 {
	return int64(len(m.Data)) * 4
}

// Equal reports element-wise equality within eps.
func Equal(a, b *Matrix, eps float32) bool {
	if a.RowsN != b.RowsN || a.ColsN != b.ColsN {
		return false
	}
	return vec.Equal(a.Data, b.Data, eps)
}

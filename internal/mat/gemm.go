package mat

import (
	"fmt"
	"runtime"
	"sync"

	"ejoin/internal/vec"
)

// GemmOptions tunes the blocked similarity GEMM. The zero value picks
// sensible defaults (all CPUs, 64×64 blocks, SIMD kernel).
type GemmOptions struct {
	// Threads is the number of worker goroutines; <=0 means GOMAXPROCS.
	Threads int
	// BlockRows is the R-panel height in rows; <=0 means 64.
	BlockRows int
	// BlockCols is the S-panel height in rows; <=0 means 64.
	BlockCols int
	// Kernel selects scalar vs unrolled inner kernels.
	Kernel vec.Kernel
}

func (o GemmOptions) withDefaults() GemmOptions {
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if o.BlockRows <= 0 {
		o.BlockRows = 64
	}
	if o.BlockCols <= 0 {
		o.BlockCols = 64
	}
	return o
}

// MulTransposeInto computes dst = r · sᵀ, i.e. dst[i][j] = r.Row(i)·s.Row(j),
// using cache-blocked parallel execution. dst must be r.Rows()×s.Rows().
// This is the tensor-join primitive: with unit-norm rows the result is the
// full pairwise cosine similarity matrix (Figure 6, step 1).
func MulTransposeInto(dst, r, s *Matrix, opts GemmOptions) error {
	if r.Cols() != s.Cols() {
		return fmt.Errorf("mat: inner dimensions differ: %d vs %d", r.Cols(), s.Cols())
	}
	if dst.Rows() != r.Rows() || dst.Cols() != s.Rows() {
		return fmt.Errorf("mat: dst is %dx%d, want %dx%d", dst.Rows(), dst.Cols(), r.Rows(), s.Rows())
	}
	opts = opts.withDefaults()

	nr, ns := r.Rows(), s.Rows()
	if nr == 0 || ns == 0 {
		return nil
	}

	// Parallelize over R row panels; each worker owns disjoint dst rows,
	// so no synchronization on writes is needed.
	panels := make(chan [2]int)
	var wg sync.WaitGroup
	workers := opts.Threads
	if workers > nr {
		workers = nr
	}
	if workers < 1 {
		workers = 1
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for p := range panels {
				mulPanel(dst, r, s, p[0], p[1], opts)
			}
		}()
	}
	for lo := 0; lo < nr; lo += opts.BlockRows {
		hi := lo + opts.BlockRows
		if hi > nr {
			hi = nr
		}
		panels <- [2]int{lo, hi}
	}
	close(panels)
	wg.Wait()
	return nil
}

// mulPanel computes dst rows [rLo, rHi) against all of s, iterating S in
// column blocks so a block of S rows stays in cache while being reused
// against every R row of the panel.
func mulPanel(dst, r, s *Matrix, rLo, rHi int, opts GemmOptions) {
	ns := s.Rows()
	for sLo := 0; sLo < ns; sLo += opts.BlockCols {
		sHi := sLo + opts.BlockCols
		if sHi > ns {
			sHi = ns
		}
		if opts.Kernel == vec.KernelSIMD {
			mulBlockUnrolled(dst, r, s, rLo, rHi, sLo, sHi)
		} else {
			mulBlockScalar(dst, r, s, rLo, rHi, sLo, sHi)
		}
	}
}

func mulBlockScalar(dst, r, s *Matrix, rLo, rHi, sLo, sHi int) {
	for i := rLo; i < rHi; i++ {
		ri := r.Row(i)
		drow := dst.Row(i)
		for j := sLo; j < sHi; j++ {
			sj := s.Row(j)
			var acc float32
			for k := range ri {
				acc += ri[k] * sj[k]
			}
			drow[j] = acc
		}
	}
}

// mulBlockUnrolled is the register-tiled micro-kernel: a 4(R)x2(S) tile
// keeps 8 accumulators live and reuses every loaded element across the
// tile (6 loads feed 8 multiply-adds), which is where BLAS kernels get
// their advantage over tuple-at-a-time dot products. Go has no intrinsics,
// so this is the closest pure-Go analogue of MKL's role in the paper.
//
// Determinism contract: every output cell accumulates over k in ascending
// order, whether it lands in the 4x2 tile or a remainder row/column. A
// cell's bit pattern therefore depends only on its two input vectors —
// never on where block or tile boundaries fall, i.e. never on the matrix
// shapes. The shard router relies on this: it slices the same logical
// tables into per-shard matrices of different heights and promises
// byte-identical similarities to an unsharded execution.
func mulBlockUnrolled(dst, r, s *Matrix, rLo, rHi, sLo, sHi int) {
	d := r.Cols()
	i := rLo
	for ; i+4 <= rHi; i += 4 {
		r0, r1, r2, r3 := r.Row(i), r.Row(i+1), r.Row(i+2), r.Row(i+3)
		d0, d1, d2, d3 := dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3)
		j := sLo
		for ; j+2 <= sHi; j += 2 {
			// Reslice every stream to the common length d so the compiler
			// proves all k-indexed accesses in bounds (range over b0).
			b0 := s.Row(j)[:d:d]
			b1 := s.Row(j + 1)[:d:d]
			a0 := r0[:d:d]
			a1 := r1[:d:d]
			a2 := r2[:d:d]
			a3 := r3[:d:d]
			var a00, a01, a10, a11, a20, a21, a30, a31 float32
			for k := range b0 {
				s0k := b0[k]
				s1k := b1[k]
				r0k := a0[k]
				r1k := a1[k]
				r2k := a2[k]
				r3k := a3[k]
				a00 += r0k * s0k
				a01 += r0k * s1k
				a10 += r1k * s0k
				a11 += r1k * s1k
				a20 += r2k * s0k
				a21 += r2k * s1k
				a30 += r3k * s0k
				a31 += r3k * s1k
			}
			d0[j], d0[j+1] = a00, a01
			d1[j], d1[j+1] = a10, a11
			d2[j], d2[j+1] = a20, a21
			d3[j], d3[j+1] = a30, a31
		}
		for ; j < sHi; j++ {
			sj := s.Row(j)
			d0[j] = dotSeq(r0, sj)
			d1[j] = dotSeq(r1, sj)
			d2[j] = dotSeq(r2, sj)
			d3[j] = dotSeq(r3, sj)
		}
	}
	// Remaining 1-3 R rows.
	for ; i < rHi; i++ {
		ri := r.Row(i)
		drow := dst.Row(i)
		for j := sLo; j < sHi; j++ {
			drow[j] = dotSeq(ri, s.Row(j))
		}
	}
}

// dotSeq is the remainder-cell kernel: one sequential ascending-k loop,
// the same accumulation order as the register tile's per-cell sums and as
// mulBlockScalar. Remainder cells must not reassociate differently from
// tile cells (e.g. via vec.Dot's multi-lane accumulators), or a cell's
// value would depend on its position relative to the 4x2 tiling.
func dotSeq(a, b []float32) float32 {
	b = b[:len(a):len(a)]
	var acc float32
	for k := range a {
		acc += a[k] * b[k]
	}
	return acc
}

// MulTranspose allocates and returns r·sᵀ.
func MulTranspose(r, s *Matrix, opts GemmOptions) (*Matrix, error) {
	dst := New(r.Rows(), s.Rows())
	if err := MulTransposeInto(dst, r, s, opts); err != nil {
		return nil, err
	}
	return dst, nil
}

package mat

import (
	"math/rand"
	"testing"

	"ejoin/internal/vec"
)

func benchMatrices(n, d int) (*Matrix, *Matrix, *Matrix) {
	rng := rand.New(rand.NewSource(1))
	r := randomMatrix(rng, n, d)
	s := randomMatrix(rng, n, d)
	return r, s, New(n, n)
}

func BenchmarkGemmSIMDKernel(b *testing.B) {
	r, s, dst := benchMatrices(1024, 100)
	opts := GemmOptions{Threads: 1, Kernel: vec.KernelSIMD}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MulTransposeInto(dst, r, s, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(1024) * 1024 * 100 * 4)
}

func BenchmarkGemmScalarKernel(b *testing.B) {
	r, s, dst := benchMatrices(1024, 100)
	opts := GemmOptions{Threads: 1, Kernel: vec.KernelScalar}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MulTransposeInto(dst, r, s, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRowDotBaseline is the tuple-at-a-time comparison point: the
// NLJ's inner kernel over the same data.
func BenchmarkRowDotBaseline(b *testing.B) {
	r, s, dst := benchMatrices(1024, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for x := 0; x < r.Rows(); x++ {
			rx := r.Row(x)
			drow := dst.Row(x)
			for y := 0; y < s.Rows(); y++ {
				drow[y] = vec.Dot(vec.KernelSIMD, rx, s.Row(y))
			}
		}
	}
}

package mat

import (
	"fmt"
	"math"
)

// BatchOptions controls mini-batched (block-decomposed) GEMM execution, the
// mechanism of Section V-B / Figure 7: the |R|×|S| intermediate similarity
// matrix is never materialized whole; instead block pairs of bounded size
// are computed with a reused buffer and handed to a consumer.
type BatchOptions struct {
	// Gemm tunes the per-block computation.
	Gemm GemmOptions
	// BudgetBytes bounds the intermediate block size (4 bytes per FP32).
	// <=0 means unbounded: a single |R|×|S| block ("No Batch" in Fig 13).
	BudgetBytes int64
	// BatchRows/BatchCols explicitly fix the block shape in rows, overriding
	// BudgetBytes when both are >0 (used by the Fig 13 sweep grid).
	BatchRows int
	BatchCols int
}

// BatchShape derives a block shape (rb, sb) such that rb*sb*4 <= budgetBytes,
// preserving the nr:ns aspect ratio so both inputs are partitioned along
// tuple boundaries (never dimensions), per Figure 6.
func BatchShape(nr, ns int, budgetBytes int64) (rb, sb int) {
	if nr <= 0 || ns <= 0 {
		return max(nr, 0), max(ns, 0)
	}
	if budgetBytes <= 0 || int64(nr)*int64(ns)*4 <= budgetBytes {
		return nr, ns
	}
	cells := float64(budgetBytes) / 4
	ratio := float64(nr) / float64(ns)
	rbf := math.Sqrt(cells * ratio)
	sbf := math.Sqrt(cells / ratio)
	rb = clamp(int(rbf), 1, nr)
	sb = clamp(int(sbf), 1, ns)
	// Shrink until within budget (integer rounding can overshoot).
	for int64(rb)*int64(sb)*4 > budgetBytes {
		if rb >= sb && rb > 1 {
			rb--
		} else if sb > 1 {
			sb--
		} else {
			break
		}
	}
	return rb, sb
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BlockVisitor receives one computed similarity block. block aliases an
// internal buffer that is reused for the next block: consumers must extract
// what they need (e.g. qualifying offsets) before returning. rOff/sOff are
// the global row offsets of the block's top-left corner (the "batch offsets"
// of Figure 6, step 2).
type BlockVisitor func(block *Matrix, rOff, sOff int) error

// ForEachBlock computes D = r·sᵀ block-wise, invoking fn for every block.
// The peak intermediate memory is one block (plus the inputs), trading
// repeated passes over input panels for bounded footprint exactly as the
// paper's mini-batch formulation does.
func ForEachBlock(r, s *Matrix, opts BatchOptions, fn BlockVisitor) error {
	if r.Cols() != s.Cols() {
		return fmt.Errorf("mat: inner dimensions differ: %d vs %d", r.Cols(), s.Cols())
	}
	nr, ns := r.Rows(), s.Rows()
	if nr == 0 || ns == 0 {
		return nil
	}
	rb, sb := opts.BatchRows, opts.BatchCols
	if rb <= 0 || sb <= 0 {
		rb, sb = BatchShape(nr, ns, opts.BudgetBytes)
	}
	rb = clamp(rb, 1, nr)
	sb = clamp(sb, 1, ns)

	buf := New(rb, sb)
	for rLo := 0; rLo < nr; rLo += rb {
		rHi := rLo + rb
		if rHi > nr {
			rHi = nr
		}
		rBlk := r.Slice(rLo, rHi)
		for sLo := 0; sLo < ns; sLo += sb {
			sHi := sLo + sb
			if sHi > ns {
				sHi = ns
			}
			sBlk := s.Slice(sLo, sHi)
			dst := buf
			if rHi-rLo != rb || sHi-sLo != sb {
				// Edge block: view with the right shape over fresh storage
				// (cannot reshape the row-major buffer without strides).
				dst = New(rHi-rLo, sHi-sLo)
			}
			if err := MulTransposeInto(dst, rBlk, sBlk, opts.Gemm); err != nil {
				return err
			}
			if err := fn(dst, rLo, sLo); err != nil {
				return err
			}
		}
	}
	return nil
}

// PeakBlockBytes reports the intermediate buffer size ForEachBlock will use
// for the given inputs and options — the quantity Figure 13 plots as
// "required RAM" relative to the unbatched |R|×|S| matrix.
func PeakBlockBytes(nr, ns int, opts BatchOptions) int64 {
	rb, sb := opts.BatchRows, opts.BatchCols
	if rb <= 0 || sb <= 0 {
		rb, sb = BatchShape(nr, ns, opts.BudgetBytes)
	}
	rb = clamp(rb, 1, max(nr, 1))
	sb = clamp(sb, 1, max(ns, 1))
	return int64(rb) * int64(sb) * 4
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition strictly checks Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers precede their samples, families are
// contiguous, metric and label names are legal, label values are
// correctly escaped/terminated, values parse, histograms carry complete,
// cumulative, non-decreasing bucket series ending at le="+Inf" with
// _count equal to the +Inf bucket, counters are non-negative and finite,
// and no sample is duplicated. Returns nil for valid input (CI's
// contract for GET /metrics).
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	types := make(map[string]string)      // family -> declared type
	helps := make(map[string]bool)        // family -> HELP seen
	closed := make(map[string]bool)       // family -> samples ended
	seen := make(map[string]bool)         // name+labels -> duplicate check
	hists := make(map[string]*histSeries) // family+plainLabels -> bucket audit
	var current string                    // family whose block is open
	line := 0

	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fam, typ, err := parseHeader(text)
			if err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
			if fam == "" {
				continue // plain comment
			}
			if closed[fam] {
				return fmt.Errorf("line %d: family %q reopened after its samples ended", line, fam)
			}
			if typ != "" {
				if _, dup := types[fam]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", line, fam)
				}
				types[fam] = typ
			} else {
				if helps[fam] {
					return fmt.Errorf("line %d: duplicate HELP for %q", line, fam)
				}
				helps[fam] = true
			}
			if current != "" && current != fam {
				closed[current] = true
			}
			current = fam
			continue
		}

		name, labels, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		fam := familyOf(name, types)
		if closed[fam] {
			return fmt.Errorf("line %d: sample for %q after its family block ended", line, fam)
		}
		if current != "" && current != fam {
			closed[current] = true
		}
		current = fam
		typ, declared := types[fam]
		if !declared {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE", line, name)
		}
		key := name + "|" + canonicalLabels(labels)
		if seen[key] {
			return fmt.Errorf("line %d: duplicate sample %s%s", line, name, canonicalLabels(labels))
		}
		seen[key] = true

		switch typ {
		case "counter":
			if name != fam {
				return fmt.Errorf("line %d: counter sample %q does not match family %q", line, name, fam)
			}
			if math.IsNaN(value) || math.IsInf(value, 0) || value < 0 {
				return fmt.Errorf("line %d: counter %q has invalid value %v", line, name, value)
			}
		case "gauge":
			if name != fam {
				return fmt.Errorf("line %d: gauge sample %q does not match family %q", line, name, fam)
			}
		case "histogram":
			if err := auditHistogramSample(fam, name, labels, value, hists); err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
		case "summary", "untyped":
			// Accepted but not audited further.
		default:
			return fmt.Errorf("line %d: unknown TYPE %q for %q", line, typ, fam)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, h := range hists {
		if err := h.complete(); err != nil {
			return fmt.Errorf("histogram %s: %w", key, err)
		}
	}
	return nil
}

// parseHeader parses a # HELP / # TYPE comment, returning the family name
// and (for TYPE) the declared type. Plain comments return ("", "", nil).
func parseHeader(text string) (fam, typ string, err error) {
	rest, ok := strings.CutPrefix(text, "# ")
	if !ok {
		return "", "", nil // "#..." without space: plain comment
	}
	switch {
	case strings.HasPrefix(rest, "HELP "):
		fields := strings.SplitN(rest[len("HELP "):], " ", 2)
		if fields[0] == "" || !validMetricName(fields[0]) {
			return "", "", fmt.Errorf("HELP with invalid metric name %q", fields[0])
		}
		return fields[0], "", nil
	case strings.HasPrefix(rest, "TYPE "):
		fields := strings.Fields(rest[len("TYPE "):])
		if len(fields) != 2 {
			return "", "", fmt.Errorf("malformed TYPE line %q", text)
		}
		if !validMetricName(fields[0]) {
			return "", "", fmt.Errorf("TYPE with invalid metric name %q", fields[0])
		}
		switch fields[1] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return "", "", fmt.Errorf("invalid metric type %q", fields[1])
		}
		return fields[0], fields[1], nil
	default:
		return "", "", nil
	}
}

// parseSample parses one sample line: name{labels} value [timestamp].
func parseSample(text string) (name string, labels map[string]string, value float64, err error) {
	i := 0
	for i < len(text) && isNameChar(text[i], i == 0) {
		i++
	}
	name = text[:i]
	if name == "" {
		return "", nil, 0, fmt.Errorf("sample line %q has no metric name", text)
	}
	labels = map[string]string{}
	if i < len(text) && text[i] == '{' {
		i++
		for {
			if i >= len(text) {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", text)
			}
			if text[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(text) && isNameChar(text[j], j == i) && text[j] != ':' {
				j++
			}
			lname := text[i:j]
			if lname == "" || j >= len(text) || text[j] != '=' || j+1 >= len(text) || text[j+1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed label at %q", text[i:])
			}
			val, next, verr := parseLabelValue(text, j+2)
			if verr != nil {
				return "", nil, 0, verr
			}
			if _, dup := labels[lname]; dup {
				return "", nil, 0, fmt.Errorf("duplicate label %q", lname)
			}
			labels[lname] = val
			i = next
			if i < len(text) && text[i] == ',' {
				i++
			}
		}
	}
	rest := strings.TrimSpace(text[i:])
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed value in %q", text)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("timestamp %q: %w", fields[1], terr)
		}
	}
	return name, labels, value, nil
}

// parseLabelValue parses an escaped, quoted label value starting at i
// (just past the opening quote), returning the value and the index past
// the closing quote.
func parseLabelValue(text string, i int) (string, int, error) {
	var b strings.Builder
	for i < len(text) {
		c := text[i]
		switch c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(text) {
				return "", 0, fmt.Errorf("dangling escape in %q", text)
			}
			switch text[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("invalid escape \\%c in %q", text[i+1], text)
			}
			i += 2
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated label value in %q", text)
}

// familyOf maps a sample name to its family: histogram series names carry
// _bucket/_sum/_count suffixes.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t, declared := types[base]; declared && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return name
}

// histSeries audits one histogram series (one family + label set).
type histSeries struct {
	buckets  []histBucket
	sumSeen  bool
	count    float64
	countSet bool
}

type histBucket struct {
	le    float64
	count float64
}

func auditHistogramSample(fam, name string, labels map[string]string, value float64, hists map[string]*histSeries) error {
	plain := make(map[string]string, len(labels))
	for k, v := range labels {
		if k != "le" {
			plain[k] = v
		}
	}
	key := fam + canonicalLabelsMap(plain)
	h := hists[key]
	if h == nil {
		h = &histSeries{}
		hists[key] = h
	}
	switch {
	case name == fam+"_bucket":
		leStr, ok := labels["le"]
		if !ok {
			return fmt.Errorf("bucket sample %q missing le label", name)
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			return fmt.Errorf("bucket le %q: %w", leStr, err)
		}
		if len(h.buckets) > 0 {
			last := h.buckets[len(h.buckets)-1]
			if le <= last.le {
				return fmt.Errorf("bucket le %v not ascending after %v", le, last.le)
			}
			if value < last.count {
				return fmt.Errorf("bucket count %v decreases after %v (not cumulative)", value, last.count)
			}
		}
		if value < 0 || math.IsNaN(value) {
			return fmt.Errorf("bucket count %v invalid", value)
		}
		h.buckets = append(h.buckets, histBucket{le: le, count: value})
	case name == fam+"_sum":
		if h.sumSeen {
			return fmt.Errorf("duplicate %s_sum", fam)
		}
		h.sumSeen = true
	case name == fam+"_count":
		if h.countSet {
			return fmt.Errorf("duplicate %s_count", fam)
		}
		h.count, h.countSet = value, true
	case name == fam:
		return fmt.Errorf("histogram family %q has a bare sample (want _bucket/_sum/_count)", fam)
	default:
		return fmt.Errorf("sample %q does not belong to histogram family %q", name, fam)
	}
	return nil
}

// complete checks a series' closing invariants once all input is read.
func (h *histSeries) complete() error {
	if len(h.buckets) == 0 {
		return fmt.Errorf("no buckets")
	}
	last := h.buckets[len(h.buckets)-1]
	if !math.IsInf(last.le, 1) {
		return fmt.Errorf("missing le=\"+Inf\" bucket")
	}
	if !h.sumSeen {
		return fmt.Errorf("missing _sum")
	}
	if !h.countSet {
		return fmt.Errorf("missing _count")
	}
	if h.count != last.count {
		return fmt.Errorf("_count %v != +Inf bucket %v", h.count, last.count)
	}
	return nil
}

func canonicalLabels(labels map[string]string) string {
	return canonicalLabelsMap(labels)
}

func canonicalLabelsMap(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + strconv.Quote(labels[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func validMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return len(s) > 0
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	default:
		return false
	}
}

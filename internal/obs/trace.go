// Package obs is the engine's observability substrate: per-query traces
// with named spans, the EXPLAIN ANALYZE node tree (estimated vs observed
// cardinality, per-node wall times), lock-free log-bucketed latency
// histograms with a Prometheus text-exposition writer, and a slow-query
// log. No external dependencies; every recording call is nil-safe so
// untraced paths (CLI one-shots, benchmarks with tracing disabled) pay
// only a context lookup.
//
// The trace span vocabulary (the names recorded by the service layer and
// executor) is:
//
//	resolve      parse + bind, or plan-cache hit validation
//	plan         naive plan construction + optimization + precision rules
//	admit        admission wait (execution slot + byte budget)
//	execute      the whole executor run (embed spans + join nest inside)
//	embed        one input's E_µ evaluation (attrs: hits/misses/merged/model_calls)
//	join:<s>     the comparison phase of scan strategy s (nlj, tensor, naive-nlj)
//	index.probe  the probe loop of the index strategy
//	rerank       exact rescoring inside an IVF-PQ probe (synthetic: placed
//	             at the end of index.probe, duration from the index)
//	materialize  joined-output table construction
//	wal.append   fsynced WAL append of a mutation batch
//	apply        MVCC apply + publish of a mutation batch
//	index.append incremental vector-index maintenance for a mutation batch
//	audit.brute  exact brute-force re-run of a sampled index probe (attrs:
//	             rows scanned, recall_permille); the trace's strategy
//	             reads "audit"
//	tune         one auto-tuner knob move (attrs: from/to); the trace's
//	             query text carries table, knob, and reason
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Span is one completed, named interval within a trace. Start is the
// offset from the trace's start, so spans order and nest without clock
// arithmetic on the reader's side.
type Span struct {
	Name  string           `json:"name"`
	Start time.Duration    `json:"start_ns"`
	Dur   time.Duration    `json:"dur_ns"`
	Attrs map[string]int64 `json:"attrs,omitempty"`
}

// Trace is one request's recording surface, carried via context.Context
// through the whole query path. All methods are safe on a nil receiver
// (no trace attached) and for concurrent use.
type Trace struct {
	id    string
	label string
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTrace starts a trace. id is the request id (empty generates one);
// label is the human query text shown in the slow-query log.
func NewTrace(id, label string) *Trace {
	if id == "" {
		id = NewRequestID()
	}
	// Most query traces record well under 12 spans; preallocating keeps
	// the steady state to the one Trace allocation.
	return &Trace{id: id, label: label, start: time.Now(), spans: make([]Span, 0, 12)}
}

// ID is the trace's request id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Since is the offset from the trace's start (0 on nil) — the anchor for
// synthetic spans recorded after the fact via AddSpan.
func (t *Trace) Since() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// ActiveSpan is an open span handle; End records it on the trace.
type ActiveSpan struct {
	t     *Trace
	name  string
	start time.Duration
	attrs map[string]int64
}

// StartSpan opens a span. Returns nil (safe to use) on a nil trace.
func (t *Trace) StartSpan(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, name: name, start: time.Since(t.start)}
}

// Attr attaches one integer attribute, returning s for chaining.
func (s *ActiveSpan) Attr(key string, v int64) *ActiveSpan {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = make(map[string]int64, 4)
	}
	s.attrs[key] = v
	return s
}

// End closes the span and records it.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.t.AddSpan(s.name, s.start, time.Since(s.t.start)-s.start, s.attrs)
}

// AddSpan records a completed span directly — for intervals measured
// elsewhere (e.g. rerank time reported by the index after the probe).
func (t *Trace) AddSpan(name string, start, dur time.Duration, attrs map[string]int64) {
	if t == nil {
		return
	}
	if start < 0 {
		start = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start, Dur: dur, Attrs: attrs})
	t.mu.Unlock()
}

// TraceSnapshot is a completed trace: the slow-query-log entry and the
// explain-mode response payload.
type TraceSnapshot struct {
	ID        string        `json:"id"`
	Query     string        `json:"query"`
	Start     time.Time     `json:"start"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	Strategy  string        `json:"strategy,omitempty"`
	Precision string        `json:"precision,omitempty"`
	Error     string        `json:"error,omitempty"`
	Spans     []Span        `json:"spans"`
	Plan      *NodeStats    `json:"plan,omitempty"`
}

// Finish seals the trace into a snapshot. The trace remains usable (it is
// not consumed), but callers treat Finish as the end of recording.
func (t *Trace) Finish(strategy, precision string, err error, plan *NodeStats) *TraceSnapshot {
	if t == nil {
		return nil
	}
	snap := &TraceSnapshot{
		ID:        t.id,
		Query:     t.label,
		Start:     t.start,
		Elapsed:   time.Since(t.start),
		Strategy:  strategy,
		Precision: precision,
		Plan:      plan,
	}
	if err != nil {
		snap.Error = err.Error()
	}
	t.mu.Lock()
	snap.Spans = make([]Span, len(t.spans))
	copy(snap.Spans, t.spans)
	t.mu.Unlock()
	return snap
}

// NewRequestID draws a 16-hex-char random request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("obs: reading request-id randomness: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

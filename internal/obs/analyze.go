package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// NodeStats is one plan node's EXPLAIN ANALYZE record: the planner's
// estimated output cardinality next to what execution observed, plus the
// node's own wall time. The tree mirrors the executed plan. This is the
// recording shape the adaptive planner consumes: estimate/observation
// pairs per operator, per query.
type NodeStats struct {
	// Name is the node's Explain rendering (operator + arguments).
	Name string `json:"name"`
	// EstRows is the planning-time output cardinality estimate (-1 when
	// the planner had no estimate for this node).
	EstRows int64 `json:"est_rows"`
	// ObsRows is the observed output cardinality.
	ObsRows int64 `json:"obs_rows"`
	// Elapsed is the node's own wall time (children excluded).
	Elapsed time.Duration `json:"elapsed_ns"`
	// Detail carries operator-specific observations (embed hit/miss split,
	// comparison counts).
	Detail string `json:"detail,omitempty"`
	// Children are the node's inputs.
	Children []*NodeStats `json:"children,omitempty"`
}

// RenderAnalyze renders the tree as indented text, one node per line:
//
//	EJoin(...)  (est=150 obs=42 time=1.8ms) comparisons=22500
//	  Embed(...)  (est=150 obs=150 time=3.1ms) hits=150 misses=0
//	    Scan(catalog, rows=150)  (est=150 obs=150 time=12µs)
func RenderAnalyze(root *NodeStats) string {
	var b strings.Builder
	renderInto(&b, root, 0)
	return b.String()
}

func renderInto(b *strings.Builder, n *NodeStats, depth int) {
	if n == nil {
		return
	}
	b.WriteString(strings.Repeat("  ", depth))
	est := "?"
	if n.EstRows >= 0 {
		est = fmt.Sprintf("%d", n.EstRows)
	}
	fmt.Fprintf(b, "%s  (est=%s obs=%d time=%s)", n.Name, est, n.ObsRows, n.Elapsed.Round(time.Microsecond))
	if n.Detail != "" {
		b.WriteString(" ")
		b.WriteString(n.Detail)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		renderInto(b, c, depth+1)
	}
}

// AttrsDetail renders attrs as a deterministic "k=v k=v" detail string.
func AttrsDetail(attrs map[string]int64) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, attrs[k])
	}
	return strings.Join(parts, " ")
}

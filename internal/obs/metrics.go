package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of finite latency buckets: powers of two of
// one microsecond, 1µs … ~33.5s. Everything slower lands in +Inf.
const HistBuckets = 26

// histBound returns bucket i's inclusive upper bound.
func histBound(i int) time.Duration { return time.Microsecond << i }

// Histogram is a lock-free log-bucketed latency histogram: fixed
// power-of-two-microsecond buckets, atomic increments, no allocation on
// the observe path. The zero value is ready to use.
type Histogram struct {
	counts [HistBuckets + 1]atomic.Uint64 // last = +Inf
	sumNS  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	// Bucket index: the smallest i with ns <= 1µs<<i.
	us := uint64(ns+999) / 1000
	idx := 0
	if us > 1 {
		idx = bits.Len64(us - 1)
	}
	if idx > HistBuckets {
		idx = HistBuckets
	}
	h.counts[idx].Add(1)
	h.sumNS.Add(ns)
}

// Snapshot copies the bucket counts (cumulative count and sum derive from
// it). The copy is not an atomic cut across buckets — standard for
// metrics scrapes — but cumulative rendering stays internally consistent
// because it is computed from this one copy.
func (h *Histogram) Snapshot() (counts [HistBuckets + 1]uint64, sumNS int64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.sumNS.Load()
}

// Quantile estimates the q-th quantile (q in [0,1]) as the upper bound
// of the bucket holding that rank — the same upper-bound convention
// Prometheus' histogram_quantile uses, so dashboards and in-process
// reads agree. An empty histogram reports 0; ranks landing in the +Inf
// overflow bucket report the largest finite bound (the estimate is a
// floor there, not an interpolation).
func (h *Histogram) Quantile(q float64) time.Duration {
	counts, _ := h.Snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		cum += counts[i]
		if cum >= rank {
			return histBound(i)
		}
	}
	return histBound(HistBuckets - 1)
}

// Count is the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// HistogramVec is a histogram family over one label's values (e.g. one
// latency histogram per join strategy). Lookup is read-locked; the
// histograms themselves stay lock-free.
type HistogramVec struct {
	mu sync.RWMutex
	m  map[string]*Histogram
}

// With returns the histogram for one label value, creating it on first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h := v.m[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.m == nil {
		v.m = make(map[string]*Histogram)
	}
	if h = v.m[value]; h == nil {
		h = &Histogram{}
		v.m[value] = h
	}
	return h
}

// Each visits the family's histograms in sorted label order.
func (v *HistogramVec) Each(fn func(value string, h *Histogram)) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	hs := make(map[string]*Histogram, len(v.m))
	for k, h := range v.m {
		hs[k] = h
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		fn(k, hs[k])
	}
}

// MetricsWriter renders Prometheus text exposition format (version
// 0.0.4) without external dependencies. Families must be written whole
// (header, then samples) and in one pass; callers get determinism by
// writing families and label values in sorted order.
type MetricsWriter struct {
	w   io.Writer
	err error
}

// NewMetricsWriter wraps w. Errors are sticky; check Err once at the end.
func NewMetricsWriter(w io.Writer) *MetricsWriter { return &MetricsWriter{w: w} }

// Err returns the first write error.
func (mw *MetricsWriter) Err() error { return mw.err }

func (mw *MetricsWriter) printf(format string, args ...any) {
	if mw.err != nil {
		return
	}
	_, mw.err = fmt.Fprintf(mw.w, format, args...)
}

// Family writes a family header. typ is counter, gauge, or histogram.
func (mw *MetricsWriter) Family(name, typ, help string) {
	mw.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample writes one sample line. labels are name/value pairs.
func (mw *MetricsWriter) Sample(name string, labels []string, v float64) {
	mw.printf("%s%s %s\n", name, renderLabels(labels), formatValue(v))
}

// Counter writes a complete single-sample counter family.
func (mw *MetricsWriter) Counter(name, help string, v float64) {
	mw.Family(name, "counter", help)
	mw.Sample(name, nil, v)
}

// Gauge writes a complete single-sample gauge family.
func (mw *MetricsWriter) Gauge(name, help string, v float64) {
	mw.Family(name, "gauge", help)
	mw.Sample(name, nil, v)
}

// HistogramSamples writes one histogram's _bucket/_sum/_count series
// under an already-written family header, with labels appended to each
// bucket's le label.
func (mw *MetricsWriter) HistogramSamples(name string, labels []string, h *Histogram) {
	counts, sumNS := h.Snapshot()
	// Never append into the caller's slice: reuse of its backing array
	// across bucket lines would corrupt earlier renders.
	withLE := func(le string) []string {
		out := make([]string, 0, len(labels)+2)
		return append(append(out, labels...), "le", le)
	}
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		cum += counts[i]
		le := strconv.FormatFloat(histBound(i).Seconds(), 'g', -1, 64)
		mw.printf("%s_bucket%s %d\n", name, renderLabels(withLE(le)), cum)
	}
	cum += counts[HistBuckets]
	mw.printf("%s_bucket%s %d\n", name, renderLabels(withLE("+Inf")), cum)
	mw.printf("%s_sum%s %s\n", name, renderLabels(labels), formatValue(float64(sumNS)/1e9))
	mw.printf("%s_count%s %d\n", name, renderLabels(labels), cum)
}

// Histogram writes a complete one-histogram family.
func (mw *MetricsWriter) Histogram(name, help string, h *Histogram) {
	mw.Family(name, "histogram", help)
	mw.HistogramSamples(name, nil, h)
}

// FloatHistogram writes a complete histogram family from generic
// snapshot data: counts has one entry per bound plus a final implicit
// +Inf bucket, and sum is the running sum of observed values. This is
// the exposition hook for histograms over unitless values (recall,
// q-error) that the duration-bucketed Histogram cannot hold.
func (mw *MetricsWriter) FloatHistogram(name, help string, bounds []float64, counts []uint64, sum float64) {
	mw.Family(name, "histogram", help)
	var cum uint64
	for i, b := range bounds {
		if i < len(counts) {
			cum += counts[i]
		}
		le := strconv.FormatFloat(b, 'g', -1, 64)
		mw.printf("%s_bucket%s %d\n", name, renderLabels([]string{"le", le}), cum)
	}
	if len(counts) > len(bounds) {
		cum += counts[len(bounds)]
	}
	mw.printf("%s_bucket%s %d\n", name, renderLabels([]string{"le", "+Inf"}), cum)
	mw.printf("%s_sum %s\n", name, formatValue(sum))
	mw.printf("%s_count %d\n", name, cum)
}

// HistogramVec writes a complete histogram family with one series per
// label value, in sorted order.
func (mw *MetricsWriter) HistogramVec(name, help, label string, v *HistogramVec) {
	mw.Family(name, "histogram", help)
	v.Each(func(value string, h *Histogram) {
		mw.HistogramSamples(name, []string{label, value}, h)
	})
}

func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

package obs

import "context"

type traceKey struct{}
type requestIDKey struct{}
type analyzeKey struct{}

// NewContext returns ctx carrying t. Recording calls downstream find it
// via FromContext.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. All Trace methods
// are nil-safe, so callers use the result unconditionally.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// WithRequestID returns ctx carrying the request id (the HTTP layer's
// X-Request-ID), so the engine stamps it on traces it creates.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request id carried by ctx ("" when absent).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// WithAnalyze marks ctx as an EXPLAIN ANALYZE execution: the executor
// builds the per-node observation tree only under this marker. Plain
// traced queries record spans and histograms but skip the tree — it is
// the expensive part of tracing (per-node allocation plus rendered
// detail strings), and nothing reads it outside an explain response.
func WithAnalyze(ctx context.Context) context.Context {
	return context.WithValue(ctx, analyzeKey{}, true)
}

// AnalyzeFromContext reports whether ctx requests EXPLAIN ANALYZE.
func AnalyzeFromContext(ctx context.Context) bool {
	on, _ := ctx.Value(analyzeKey{}).(bool)
	return on
}

package obs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpansAndFinish(t *testing.T) {
	tr := NewTrace("req-1", "SELECT ...")
	if tr.ID() != "req-1" {
		t.Fatalf("ID = %q, want req-1", tr.ID())
	}
	s := tr.StartSpan("resolve")
	time.Sleep(time.Millisecond)
	s.Attr("tables", 2).End()
	tr.AddSpan("rerank", 5*time.Millisecond, 2*time.Millisecond, map[string]int64{"rows": 10})

	snap := tr.Finish("tensor", "fp32", errors.New("boom"), &NodeStats{Name: "Scan"})
	if snap.ID != "req-1" || snap.Query != "SELECT ..." {
		t.Fatalf("snapshot identity wrong: %+v", snap)
	}
	if snap.Strategy != "tensor" || snap.Precision != "fp32" || snap.Error != "boom" {
		t.Fatalf("snapshot metadata wrong: %+v", snap)
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(snap.Spans))
	}
	if snap.Spans[0].Name != "resolve" || snap.Spans[0].Dur <= 0 || snap.Spans[0].Attrs["tables"] != 2 {
		t.Fatalf("resolve span wrong: %+v", snap.Spans[0])
	}
	if snap.Spans[1].Name != "rerank" || snap.Spans[1].Dur != 2*time.Millisecond {
		t.Fatalf("rerank span wrong: %+v", snap.Spans[1])
	}
	if snap.Plan == nil || snap.Plan.Name != "Scan" {
		t.Fatalf("plan missing from snapshot")
	}
	if snap.Elapsed <= 0 {
		t.Fatalf("elapsed not recorded")
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil trace ID should be empty")
	}
	tr.StartSpan("x").Attr("k", 1).End() // must not panic
	tr.AddSpan("y", 0, 0, nil)
	if tr.Finish("", "", nil, nil) != nil {
		t.Fatal("nil trace Finish should return nil")
	}
}

func TestContextCarriesTraceAndRequestID(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty context should carry no trace")
	}
	if RequestIDFrom(ctx) != "" {
		t.Fatal("empty context should carry no request id")
	}
	tr := NewTrace("", "q")
	ctx = NewContext(WithRequestID(ctx, "abc"), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace not round-tripped")
	}
	if RequestIDFrom(ctx) != "abc" {
		t.Fatal("request id not round-tripped")
	}
	if len(tr.ID()) != 16 {
		t.Fatalf("generated id %q should be 16 hex chars", tr.ID())
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Fatalf("request ids collided: %q", a)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0}, // rounds up to 1µs -> bucket 0
		{time.Microsecond, 0},      // exactly 1µs -> bucket 0
		{time.Microsecond + 1, 1},  // just over 1µs -> bucket 1 (<= 2µs)
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{time.Millisecond, 10},   // 1024µs > 512µs: bucket 10 (<=1024µs)
		{time.Hour, HistBuckets}, // beyond the last finite bound -> +Inf
	}
	for _, c := range cases {
		h.Observe(c.d)
		counts, _ := h.Snapshot()
		if counts[c.want] == 0 {
			t.Fatalf("Observe(%v) did not land in bucket %d: %v", c.d, c.want, counts)
		}
		// Reset by building a fresh histogram each iteration.
		h = Histogram{}
	}

	h = Histogram{}
	h.Observe(3 * time.Millisecond)
	h.Observe(5 * time.Millisecond)
	counts, sumNS := h.Snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != 2 || h.Count() != 2 {
		t.Fatalf("count = %d/%d, want 2", total, h.Count())
	}
	if sumNS != int64(8*time.Millisecond) {
		t.Fatalf("sum = %d, want %d", sumNS, int64(8*time.Millisecond))
	}
}

func TestHistogramBoundsAscend(t *testing.T) {
	for i := 1; i < HistBuckets; i++ {
		if histBound(i) <= histBound(i-1) {
			t.Fatalf("bounds not ascending at %d", i)
		}
	}
}

func TestHistogramVec(t *testing.T) {
	var v HistogramVec
	v.With("tensor").Observe(time.Millisecond)
	v.With("index").Observe(time.Millisecond)
	v.With("tensor").Observe(time.Millisecond)
	var order []string
	v.Each(func(value string, h *Histogram) {
		order = append(order, fmt.Sprintf("%s=%d", value, h.Count()))
	})
	got := strings.Join(order, ",")
	if got != "index=1,tensor=2" {
		t.Fatalf("Each order/counts = %q, want index=1,tensor=2", got)
	}
}

func TestMetricsWriterRendersValidExposition(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Millisecond)
	var v HistogramVec
	v.With("tensor").Observe(time.Millisecond)
	v.With(`we"ird\label` + "\n").Observe(time.Second)

	var b strings.Builder
	mw := NewMetricsWriter(&b)
	mw.Counter("ejoin_queries_total", "Total queries served.", 42)
	mw.Gauge("ejoin_cache_bytes", "Bytes held by the embedding cache.", 1<<20)
	mw.Histogram("ejoin_query_duration_seconds", "Query latency.", &h)
	mw.HistogramVec("ejoin_query_strategy_duration_seconds", "Per-strategy latency.", "strategy", &v)
	if err := mw.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, `le="+Inf"`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `strategy="tensor"`) {
		t.Fatalf("missing strategy label:\n%s", out)
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("self-rendered exposition failed validation: %v\n%s", err, out)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":                    "foo 1\n",
		"duplicate sample":           "# TYPE foo counter\nfoo 1\nfoo 2\n",
		"negative counter":           "# TYPE foo counter\nfoo -1\n",
		"interleaved families":       "# TYPE a counter\n# TYPE b counter\na 1\nb 1\na 2\n",
		"histogram missing +Inf":     "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram non-cumulative":   "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"histogram count mismatch":   "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 5\n",
		"histogram le not ascending": "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"bad metric name":            "# TYPE 1foo counter\n1foo 1\n",
		"unterminated label":         "# TYPE foo counter\nfoo{a=\"x 1\n",
		"bad escape":                 "# TYPE foo counter\nfoo{a=\"\\x\"} 1\n",
		"bad value":                  "# TYPE foo counter\nfoo pickle\n",
		"bad type":                   "# TYPE foo flavor\nfoo 1\n",
		"duplicate TYPE":             "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n",
		"reopened family":            "# TYPE a counter\na 1\n# TYPE b counter\nb 1\n# HELP a again\n",
	}
	for name, in := range cases {
		if err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validator accepted malformed input:\n%s", name, in)
		}
	}
}

func TestValidateExpositionAcceptsValid(t *testing.T) {
	in := `# HELP up Whether the target is up.
# TYPE up gauge
up 1
# comment without space-directive
# TYPE h histogram
h_bucket{x="a",le="0.1"} 1
h_bucket{x="a",le="+Inf"} 2
h_sum{x="a"} 0.5
h_count{x="a"} 2
h_bucket{x="b",le="0.1"} 0
h_bucket{x="b",le="+Inf"} 1
h_sum{x="b"} 3.2
h_count{x="b"} 1
`
	if err := ValidateExposition(strings.NewReader(in)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestSlowLogThresholdAndWorst(t *testing.T) {
	l := NewSlowLog(4, 2, 10*time.Millisecond)
	mk := func(id string, d time.Duration) *TraceSnapshot {
		return &TraceSnapshot{ID: id, Elapsed: d}
	}
	l.Record(mk("fast", time.Millisecond)) // below threshold: worst only
	l.Record(mk("slow1", 20*time.Millisecond))
	l.Record(mk("slow2", 30*time.Millisecond))

	d := l.Dump()
	if d.Recorded != 2 || len(d.Recent) != 2 {
		t.Fatalf("ring admission wrong: recorded=%d recent=%d", d.Recorded, len(d.Recent))
	}
	if d.Recent[0].ID != "slow2" || d.Recent[1].ID != "slow1" {
		t.Fatalf("recent not newest-first: %s,%s", d.Recent[0].ID, d.Recent[1].ID)
	}
	if len(d.Worst) != 2 || d.Worst[0].ID != "slow2" || d.Worst[1].ID != "slow1" {
		t.Fatalf("worst wrong: %+v", d.Worst)
	}

	// A later monster query must stay in worst even after the ring rolls.
	l.Record(mk("monster", time.Second))
	for i := 0; i < 10; i++ {
		l.Record(mk(fmt.Sprintf("filler%d", i), 15*time.Millisecond))
	}
	d = l.Dump()
	if len(d.Recent) != 4 {
		t.Fatalf("ring size = %d, want 4", len(d.Recent))
	}
	if d.Recent[0].ID != "filler9" {
		t.Fatalf("newest = %s, want filler9", d.Recent[0].ID)
	}
	if d.Worst[0].ID != "monster" {
		t.Fatalf("worst[0] = %s, want monster", d.Worst[0].ID)
	}
}

func TestSlowLogZeroThresholdKeepsEverything(t *testing.T) {
	l := NewSlowLog(8, 2, 0)
	l.Record(&TraceSnapshot{ID: "a", Elapsed: time.Microsecond})
	entries, worst, recorded := l.Counts()
	if entries != 1 || worst != 1 || recorded != 1 {
		t.Fatalf("counts = %d,%d,%d; want 1,1,1", entries, worst, recorded)
	}
	var nilLog *SlowLog
	nilLog.Record(&TraceSnapshot{}) // must not panic
}

func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(16, 4, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Record(&TraceSnapshot{ID: fmt.Sprintf("%d-%d", g, i), Elapsed: time.Duration(i) * time.Microsecond})
				if i%10 == 0 {
					l.Dump()
				}
			}
		}(g)
	}
	wg.Wait()
	if _, _, recorded := l.Counts(); recorded != 800 {
		t.Fatalf("recorded = %d, want 800", recorded)
	}
}

func TestRenderAnalyze(t *testing.T) {
	root := &NodeStats{
		Name: "EJoin(k=2)", EstRows: 300, ObsRows: 42, Elapsed: 1800 * time.Microsecond,
		Detail: "comparisons=22500",
		Children: []*NodeStats{
			{Name: "Embed(a)", EstRows: 150, ObsRows: 150, Elapsed: 3100 * time.Microsecond, Detail: "hits=150 misses=0"},
			{Name: "Scan(b)", EstRows: -1, ObsRows: 151, Elapsed: 12 * time.Microsecond},
		},
	}
	out := RenderAnalyze(root)
	want := "EJoin(k=2)  (est=300 obs=42 time=1.8ms) comparisons=22500\n" +
		"  Embed(a)  (est=150 obs=150 time=3.1ms) hits=150 misses=0\n" +
		"  Scan(b)  (est=? obs=151 time=12µs)\n"
	if out != want {
		t.Fatalf("RenderAnalyze mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
	if RenderAnalyze(nil) != "" {
		t.Fatal("nil tree should render empty")
	}
}

func TestAttrsDetail(t *testing.T) {
	if got := AttrsDetail(map[string]int64{"b": 2, "a": 1}); got != "a=1 b=2" {
		t.Fatalf("AttrsDetail = %q", got)
	}
	if AttrsDetail(nil) != "" {
		t.Fatal("nil attrs should render empty")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram Quantile = %v, want 0", got)
	}

	// A single sample answers every quantile with its bucket's bound, and
	// out-of-range q clamps instead of panicking.
	h.Observe(3 * time.Millisecond) // 3000µs -> bucket bound 4096µs
	want := 4096 * time.Microsecond
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != want {
			t.Fatalf("single-sample Quantile(%v) = %v, want %v", q, got, want)
		}
	}

	// Samples past the last finite bound land in +Inf; the quantile reports
	// the last finite bound rather than inventing an infinite duration.
	h = Histogram{}
	h.Observe(time.Hour)
	if got := h.Quantile(1); got != histBound(HistBuckets-1) {
		t.Fatalf("overflow Quantile(1) = %v, want last finite bound %v", got, histBound(HistBuckets-1))
	}

	// Mixed population: the median of 9x1µs + 1x1h is the 1µs bucket.
	h = Histogram{}
	for i := 0; i < 9; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(time.Hour)
	if got := h.Quantile(0.5); got != time.Microsecond {
		t.Fatalf("median = %v, want 1µs", got)
	}
	if got := h.Quantile(1); got != histBound(HistBuckets-1) {
		t.Fatalf("max = %v, want last finite bound", got)
	}
}

func TestFloatHistogramRendersValidExposition(t *testing.T) {
	var b strings.Builder
	mw := NewMetricsWriter(&b)
	mw.FloatHistogram("ejoin_feedback_audit_recall", "Audited recall@k.",
		[]float64{0.5, 0.9, 0.99}, []uint64{1, 2, 3, 4}, 7.5)
	if err := mw.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	out := b.String()
	for _, frag := range []string{`le="0.5"} 1`, `le="0.9"} 3`, `le="0.99"} 6`, `le="+Inf"} 10`,
		"ejoin_feedback_audit_recall_sum 7.5", "ejoin_feedback_audit_recall_count 10"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("missing %q in:\n%s", frag, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("float histogram failed validation: %v\n%s", err, out)
	}
}

func TestSlowLogFilter(t *testing.T) {
	mk := func(id, query string, d time.Duration) *TraceSnapshot {
		return &TraceSnapshot{ID: id, Query: query, Elapsed: d}
	}
	d := SlowLogDump{
		Recorded: 3,
		Recent: []*TraceSnapshot{
			mk("a", "SELECT * FROM Catalog JOIN feed", 5*time.Millisecond),
			mk("b", "SELECT * FROM orders JOIN feed", 50*time.Millisecond),
			mk("c", "tune corpus: nprobe 1 -> 2", time.Millisecond),
		},
		Worst: []*TraceSnapshot{
			mk("b", "SELECT * FROM orders JOIN feed", 50*time.Millisecond),
		},
	}

	// Substring match is case-insensitive on the query text.
	f := d.Filter("catalog", 0)
	if len(f.Recent) != 1 || f.Recent[0].ID != "a" || len(f.Worst) != 0 {
		t.Fatalf("substring filter wrong: recent=%+v worst=%+v", f.Recent, f.Worst)
	}
	// Elapsed floor applies to both sections.
	f = d.Filter("", 10*time.Millisecond)
	if len(f.Recent) != 1 || f.Recent[0].ID != "b" || len(f.Worst) != 1 {
		t.Fatalf("min-elapsed filter wrong: recent=%+v worst=%+v", f.Recent, f.Worst)
	}
	// Both together; counters pass through untouched.
	f = d.Filter("orders", 100*time.Millisecond)
	if len(f.Recent) != 0 || len(f.Worst) != 0 || f.Recorded != 3 {
		t.Fatalf("combined filter wrong: %+v", f)
	}
	// The zero filter keeps everything (and the original is not mutated).
	f = d.Filter("", 0)
	if len(f.Recent) != 3 || len(d.Recent) != 3 {
		t.Fatalf("no-op filter changed contents: got %d, original %d", len(f.Recent), len(d.Recent))
	}
}

// TestHistogramVecConcurrentMerge hammers a HistogramVec with new and
// existing keys from many goroutines while readers iterate and render —
// the copy-on-write map swap inside With must hold up under -race.
func TestHistogramVecConcurrentMerge(t *testing.T) {
	var v HistogramVec
	const goroutines, perG, keys = 8, 500, 5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v.With(fmt.Sprintf("k%d", (g+i)%keys)).Observe(time.Microsecond)
				if i%50 == 0 {
					v.Each(func(string, *Histogram) {})
					var b strings.Builder
					NewMetricsWriter(&b).HistogramVec("x_seconds", "x", "k", &v)
				}
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	v.Each(func(_ string, h *Histogram) { total += h.Count() })
	if total != goroutines*perG {
		t.Fatalf("total observations = %d, want %d", total, goroutines*perG)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var v HistogramVec
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
				v.With("s").Observe(time.Microsecond)
				if i%100 == 0 {
					h.Snapshot()
					var b strings.Builder
					NewMetricsWriter(&b).Histogram("x_seconds", "x", &h)
				}
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if v.With("s").Count() != 8000 {
		t.Fatalf("vec count = %d, want 8000", v.With("s").Count())
	}
}

package obs

import (
	"strings"
	"sync"
	"time"
)

// SlowLog is a fixed-size ring of completed traces: every trace at least
// Threshold slow enters the ring (threshold 0 keeps everything), and the
// worst N traces ever seen are retained separately so one burst of merely
// slow queries cannot evict the pathological one an operator is hunting.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	ring      []*TraceSnapshot
	next      int
	recorded  int64
	worst     []*TraceSnapshot // sorted by Elapsed descending
	worstN    int
}

// NewSlowLog builds a log holding size ring entries and the worstN
// slowest traces. size and worstN default to 128 and 8 when <= 0.
func NewSlowLog(size, worstN int, threshold time.Duration) *SlowLog {
	if size <= 0 {
		size = 128
	}
	if worstN <= 0 {
		worstN = 8
	}
	return &SlowLog{
		threshold: threshold,
		ring:      make([]*TraceSnapshot, 0, size),
		worstN:    worstN,
	}
}

// Keeps reports whether a trace that took elapsed would be retained by
// Record — in the ring (at least Threshold slow) or in the worst-N set.
// Callers use it to skip building the snapshot at all for fast queries:
// snapshotting copies every span, and in a warm steady state almost no
// query clears the worst-N floor.
func (l *SlowLog) Keeps(elapsed time.Duration) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if elapsed >= l.threshold {
		return true
	}
	return len(l.worst) < l.worstN || elapsed > l.worst[len(l.worst)-1].Elapsed
}

// Record offers a completed trace to the log.
func (l *SlowLog) Record(s *TraceSnapshot) {
	if l == nil || s == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if s.Elapsed >= l.threshold {
		l.recorded++
		if len(l.ring) < cap(l.ring) {
			l.ring = append(l.ring, s)
		} else {
			l.ring[l.next] = s
			l.next = (l.next + 1) % cap(l.ring)
		}
	}
	// Keep the worst-N set regardless of the threshold filter.
	if len(l.worst) < l.worstN || s.Elapsed > l.worst[len(l.worst)-1].Elapsed {
		i := len(l.worst)
		for i > 0 && l.worst[i-1].Elapsed < s.Elapsed {
			i--
		}
		l.worst = append(l.worst, nil)
		copy(l.worst[i+1:], l.worst[i:])
		l.worst[i] = s
		if len(l.worst) > l.worstN {
			l.worst = l.worst[:l.worstN]
		}
	}
}

// SlowLogDump is the /debug/queries payload.
type SlowLogDump struct {
	// ThresholdNS is the ring's admission threshold.
	ThresholdNS int64 `json:"threshold_ns"`
	// Recorded counts traces ever admitted to the ring (including ones
	// since overwritten).
	Recorded int64 `json:"recorded"`
	// Recent are the ring's traces, newest first.
	Recent []*TraceSnapshot `json:"recent"`
	// Worst are the slowest traces ever seen, slowest first — retained
	// even when the ring has rolled past them.
	Worst []*TraceSnapshot `json:"worst"`
}

// Dump snapshots the log.
func (l *SlowLog) Dump() SlowLogDump {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := SlowLogDump{
		ThresholdNS: l.threshold.Nanoseconds(),
		Recorded:    l.recorded,
		Recent:      make([]*TraceSnapshot, 0, len(l.ring)),
		Worst:       append([]*TraceSnapshot(nil), l.worst...),
	}
	// Newest first: walk backward from the slot before next.
	n := len(l.ring)
	for i := 0; i < n; i++ {
		out.Recent = append(out.Recent, l.ring[((l.next-1-i)%n+n)%n])
	}
	return out
}

// Filter returns a copy of the dump keeping only traces whose query text
// contains substr (case-insensitive; "" keeps all) and whose elapsed time
// is at least minElapsed. Backs /debug/queries' table= and min_ms=
// parameters; query texts carry table names, so substring match is the
// table filter without a schema change to TraceSnapshot.
func (d SlowLogDump) Filter(substr string, minElapsed time.Duration) SlowLogDump {
	keep := func(in []*TraceSnapshot) []*TraceSnapshot {
		out := make([]*TraceSnapshot, 0, len(in))
		needle := strings.ToLower(substr)
		for _, s := range in {
			if s == nil || s.Elapsed < minElapsed {
				continue
			}
			if needle != "" && !strings.Contains(strings.ToLower(s.Query), needle) {
				continue
			}
			out = append(out, s)
		}
		return out
	}
	d.Recent = keep(d.Recent)
	d.Worst = keep(d.Worst)
	return d
}

// Counts reports (ring entries, worst entries, recorded total).
func (l *SlowLog) Counts() (entries, worst int, recorded int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring), len(l.worst), l.recorded
}

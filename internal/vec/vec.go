// Package vec provides the float32 vector kernels underlying all
// embedding-domain computation: dot products, norms, normalization, and
// cosine similarity.
//
// The paper's physical optimization layer (Section V) distinguishes a plain
// scalar implementation from a SIMD (AVX-512) implementation. Go has no
// intrinsics, so this package offers two kernel families with the same
// semantics:
//
//   - KernelScalar: straightforward one-element-at-a-time loops.
//   - KernelSIMD: 8-lane unrolled loops with hoisted bounds checks and
//     independent accumulators, which the compiler can autovectorize and the
//     CPU can execute with instruction-level parallelism.
//
// Every function that takes a Kernel is exact: both kernels compute the same
// result up to floating-point reassociation.
package vec

import (
	"errors"
	"fmt"
	"math"
)

// Kernel selects the compute implementation used by kernels in this package
// and by the operators built on top of them.
type Kernel int

const (
	// KernelScalar is the portable one-element-at-a-time implementation.
	KernelScalar Kernel = iota
	// KernelSIMD is the 8-lane unrolled implementation standing in for the
	// paper's AVX SIMD code path.
	KernelSIMD
)

// String returns the kernel name as used in experiment output.
func (k Kernel) String() string {
	switch k {
	case KernelScalar:
		return "NO-SIMD"
	case KernelSIMD:
		return "SIMD"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// DefaultKernel is the kernel execution defaults to when the caller has
// no preference: the unrolled SIMD-style implementation, which is never
// slower than scalar. The cmds and the executor's fallback path all
// resolve their default through this single point.
func DefaultKernel() Kernel { return KernelSIMD }

// ErrDimensionMismatch is returned when two vectors of different
// dimensionality are combined.
var ErrDimensionMismatch = errors.New("vec: dimension mismatch")

// Dot computes the inner product of a and b using the given kernel.
// It panics if the lengths differ; use CheckedDot for an error-returning
// variant (operators validate dimensions once per relation, not per pair).
func Dot(k Kernel, a, b []float32) float32 {
	if k == KernelSIMD {
		return dotUnrolled(a, b)
	}
	return dotScalar(a, b)
}

// CheckedDot is Dot with dimension validation.
func CheckedDot(k Kernel, a, b []float32) (float32, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(a), len(b))
	}
	return Dot(k, a, b), nil
}

func dotScalar(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vec: dot dimension mismatch")
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// dotUnrolled is the "SIMD" kernel: 8 independent accumulators, bounds
// checks hoisted by re-slicing, tail handled scalar.
func dotUnrolled(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vec: dot dimension mismatch")
	}
	n := len(a)
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		aa := a[i : i+8 : i+8]
		bb := b[i : i+8 : i+8]
		s0 += aa[0] * bb[0]
		s1 += aa[1] * bb[1]
		s2 += aa[2] * bb[2]
		s3 += aa[3] * bb[3]
		s4 += aa[4] * bb[4]
		s5 += aa[5] * bb[5]
		s6 += aa[6] * bb[6]
		s7 += aa[7] * bb[7]
	}
	s := (s0 + s4) + (s1 + s5) + (s2 + s6) + (s3 + s7)
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func Norm(v []float32) float32 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return float32(math.Sqrt(s))
}

// SquaredNorm returns the squared Euclidean norm of v.
func SquaredNorm(v []float32) float32 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return float32(s)
}

// Normalize scales v in place to unit L2 norm and returns it. The zero
// vector is returned unchanged (there is no direction to preserve).
func Normalize(v []float32) []float32 {
	n := Norm(v)
	if n == 0 {
		return v
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return v
}

// NormalizeInto writes the unit-norm version of src into dst and returns
// dst. dst and src may alias. It panics on length mismatch.
func NormalizeInto(dst, src []float32) []float32 {
	if len(dst) != len(src) {
		panic("vec: NormalizeInto length mismatch")
	}
	n := Norm(src)
	if n == 0 {
		copy(dst, src)
		return dst
	}
	inv := 1 / n
	for i, x := range src {
		dst[i] = x * inv
	}
	return dst
}

// IsNormalized reports whether v has unit norm within tolerance eps.
func IsNormalized(v []float32, eps float32) bool {
	n := Norm(v)
	return n > 1-eps && n < 1+eps
}

// Cosine computes the full cosine similarity A·B/(‖A‖‖B‖) as in the paper's
// Cosine Similarity equation (Section III-A). Either zero vector yields 0.
func Cosine(k Kernel, a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(k, a, b) / (na * nb)
}

// CosineNormalized computes cosine similarity assuming both inputs are
// already unit-norm, which reduces to the dot product (the identity the
// tensor formulation of Section IV-C relies on).
func CosineNormalized(k Kernel, a, b []float32) float32 {
	return Dot(k, a, b)
}

// CosineDistance is 1 - Cosine, the distance metric used by the HNSW index.
func CosineDistance(k Kernel, a, b []float32) float32 {
	return 1 - Cosine(k, a, b)
}

// Add returns a+b element-wise in a newly allocated slice.
func Add(a, b []float32) ([]float32, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(a), len(b))
	}
	out := make([]float32, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out, nil
}

// AXPY computes y += alpha*x in place. It panics on length mismatch.
func AXPY(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("vec: AXPY length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies v by alpha in place and returns v.
func Scale(alpha float32, v []float32) []float32 {
	for i := range v {
		v[i] *= alpha
	}
	return v
}

// Clone returns a copy of v.
func Clone(v []float32) []float32 {
	out := make([]float32, len(v))
	copy(out, v)
	return out
}

// Equal reports element-wise equality within tolerance eps.
func Equal(a, b []float32, eps float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		if d < -eps || d > eps {
			return false
		}
	}
	return true
}

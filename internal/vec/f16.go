package vec

import "math"

// Half-precision (IEEE 754 binary16) support. Section V-A2 of the paper
// motivates half-precision processing: AVX-512 FP16 fits 32 half floats in
// one register, doubling effective SIMD width and halving memory traffic
// for embedding data whose dynamic range tolerates it (unit-norm
// embeddings do). This file provides the conversion and compute kernels;
// the tensor join exposes them as a storage/compute ablation.
//
// F16 values are stored as uint16 bit patterns. Conversions implement
// round-to-nearest-even; subnormals, infinities, and NaN are handled.

// F16 is one IEEE 754 binary16 value.
type F16 uint16

// F16FromFloat32 converts with round-to-nearest-even.
func F16FromFloat32(f float32) F16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23)&0xff - 127 + 15
	mant := bits & 0x7fffff

	switch {
	case exp >= 0x1f:
		// Overflow or inf/NaN.
		if int32(bits>>23)&0xff == 0xff {
			if mant != 0 {
				return F16(sign | 0x7e00) // NaN
			}
			return F16(sign | 0x7c00) // Inf
		}
		return F16(sign | 0x7c00) // overflow -> Inf
	case exp <= 0:
		// Subnormal or zero.
		if exp < -10 {
			return F16(sign) // underflow to signed zero
		}
		mant |= 0x800000 // implicit leading 1
		shift := uint32(14 - exp)
		half := uint16(mant >> shift)
		// Round to nearest even.
		rem := mant & ((1 << shift) - 1)
		mid := uint32(1) << (shift - 1)
		if rem > mid || (rem == mid && half&1 == 1) {
			half++
		}
		return F16(sign | half)
	default:
		half := uint16(exp)<<10 | uint16(mant>>13)
		// Round to nearest even on the dropped 13 bits.
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++ // may carry into the exponent, which is correct
		}
		return F16(sign | half)
	}
}

// Float32 converts back to full precision.
func (h F16) Float32() float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7f800000) // Inf
		}
		return math.Float32frombits(sign | 0x7fc00000) // NaN
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// F16Vector is a half-precision vector.
type F16Vector []F16

// EncodeF16 converts a float32 vector to half precision.
func EncodeF16(v []float32) F16Vector {
	out := make(F16Vector, len(v))
	for i, x := range v {
		out[i] = F16FromFloat32(x)
	}
	return out
}

// DecodeF16 converts back to float32.
func DecodeF16(v F16Vector) []float32 {
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = x.Float32()
	}
	return out
}

// DotF16 computes the inner product of two half-precision vectors,
// accumulating in float32 (as FP16 hardware does). The unrolled form
// mirrors the SIMD kernel.
func DotF16(k Kernel, a, b F16Vector) float32 {
	if len(a) != len(b) {
		panic("vec: DotF16 dimension mismatch")
	}
	if k == KernelSIMD {
		return dotF16Unrolled(a, b)
	}
	var s float32
	for i := range a {
		s += a[i].Float32() * b[i].Float32()
	}
	return s
}

func dotF16Unrolled(a, b F16Vector) float32 {
	n := len(a)
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		s0 += aa[0].Float32() * bb[0].Float32()
		s1 += aa[1].Float32() * bb[1].Float32()
		s2 += aa[2].Float32() * bb[2].Float32()
		s3 += aa[3].Float32() * bb[3].Float32()
	}
	s := (s0 + s2) + (s1 + s3)
	for ; i < n; i++ {
		s += a[i].Float32() * b[i].Float32()
	}
	return s
}

// F16QuantizationError returns the max absolute element error introduced
// by a round trip through half precision — the accuracy cost of the
// storage optimization.
func F16QuantizationError(v []float32) float32 {
	var maxErr float32
	for _, x := range v {
		rt := F16FromFloat32(x).Float32()
		d := x - rt
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}
	return maxErr
}

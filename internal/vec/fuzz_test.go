package vec

import (
	"math"
	"testing"
)

// FuzzF16RoundTrip checks binary16 conversion invariants on arbitrary
// float32 bit patterns: round trips preserve class (NaN/Inf/finite), sign,
// and bounded error for values in half-precision range.
func FuzzF16RoundTrip(f *testing.F) {
	for _, seed := range []uint32{0, 1, 0x3f800000, 0x7f800000, 0xff800000, 0x7fc00000, 0x33800000, 0x477fe000} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, bits uint32) {
		x := math.Float32frombits(bits)
		h := F16FromFloat32(x)
		back := h.Float32()
		switch {
		case math.IsNaN(float64(x)):
			if !math.IsNaN(float64(back)) {
				t.Fatalf("NaN lost: %#08x -> %v", bits, back)
			}
		case math.IsInf(float64(x), 0):
			if !math.IsInf(float64(back), int(sign(x))) {
				t.Fatalf("Inf lost: %v -> %v", x, back)
			}
		default:
			// Finite: sign preserved (or result is zero), and values in
			// the representable range stay within relative epsilon.
			if back != 0 && sign(back) != sign(x) {
				t.Fatalf("sign flipped: %v -> %v", x, back)
			}
			ax := math.Abs(float64(x))
			if ax >= 6.2e-5 && ax <= 65504 {
				rel := math.Abs(float64(back)-float64(x)) / ax
				if rel > 1e-3 {
					t.Fatalf("error %v for %v -> %v", rel, x, back)
				}
			}
		}
	})
}

func sign(x float32) float32 {
	if math.Signbit(float64(x)) {
		return -1
	}
	return 1
}

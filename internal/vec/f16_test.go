package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestF16ExactValues(t *testing.T) {
	cases := []struct {
		f float32
		h F16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff}, // max finite f16
	}
	for _, c := range cases {
		if got := F16FromFloat32(c.f); got != c.h {
			t.Errorf("F16FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.h)
		}
		if got := c.h.Float32(); got != c.f {
			t.Errorf("%#04x.Float32() = %v, want %v", c.h, got, c.f)
		}
	}
}

func TestF16SpecialValues(t *testing.T) {
	inf := float32(math.Inf(1))
	if got := F16FromFloat32(inf).Float32(); !math.IsInf(float64(got), 1) {
		t.Errorf("+inf round trip = %v", got)
	}
	ninf := float32(math.Inf(-1))
	if got := F16FromFloat32(ninf).Float32(); !math.IsInf(float64(got), -1) {
		t.Errorf("-inf round trip = %v", got)
	}
	nan := float32(math.NaN())
	if got := F16FromFloat32(nan).Float32(); !math.IsNaN(float64(got)) {
		t.Errorf("NaN round trip = %v", got)
	}
	// Overflow saturates to inf.
	if got := F16FromFloat32(1e9).Float32(); !math.IsInf(float64(got), 1) {
		t.Errorf("overflow = %v", got)
	}
	// Deep underflow flushes to zero, keeping sign.
	if got := F16FromFloat32(1e-30).Float32(); got != 0 {
		t.Errorf("underflow = %v", got)
	}
	if got := F16FromFloat32(-1e-30); got != 0x8000 {
		t.Errorf("negative underflow = %#04x", got)
	}
}

func TestF16Subnormals(t *testing.T) {
	// Smallest positive normal f16 is 2^-14; below that, subnormals.
	sub := float32(math.Pow(2, -15))
	rt := F16FromFloat32(sub).Float32()
	if math.Abs(float64(rt-sub)) > 1e-6 {
		t.Errorf("subnormal round trip: %v -> %v", sub, rt)
	}
	// Smallest subnormal ~5.96e-8.
	tiny := float32(5.96e-8)
	rt = F16FromFloat32(tiny).Float32()
	if rt == 0 {
		t.Errorf("smallest subnormal flushed to zero")
	}
}

// TestF16RoundTripProperty: for values in the embedding range [-1, 1], the
// round-trip error is bounded by half-precision epsilon (~1e-3 relative).
func TestF16RoundTripProperty(t *testing.T) {
	f := func(x float32) bool {
		v := float32(math.Mod(float64(x), 1)) // clamp into [-1, 1]
		if math.IsNaN(float64(v)) {
			return true
		}
		rt := F16FromFloat32(v).Float32()
		return math.Abs(float64(rt-v)) <= 1e-3*math.Max(1e-3, math.Abs(float64(v)))+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeF16(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := make([]float32, 257)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	Normalize(v)
	enc := EncodeF16(v)
	dec := DecodeF16(enc)
	if len(dec) != len(v) {
		t.Fatal("length mismatch")
	}
	for i := range v {
		if math.Abs(float64(dec[i]-v[i])) > 1e-3 {
			t.Fatalf("element %d: %v vs %v", i, dec[i], v[i])
		}
	}
	if e := F16QuantizationError(v); e > 1e-3 {
		t.Errorf("quantization error %v too large for unit vectors", e)
	}
}

// TestDotF16AccuracyProperty: half-precision dot products of unit vectors
// stay within ~1% of the float32 result — the accuracy budget that makes
// FP16 viable for cosine thresholds.
func TestDotF16AccuracyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(300)
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		Normalize(a)
		Normalize(b)
		full := float64(Dot(KernelSIMD, a, b))
		for _, k := range []Kernel{KernelScalar, KernelSIMD} {
			half := float64(DotF16(k, EncodeF16(a), EncodeF16(b)))
			if math.Abs(full-half) > 0.01 {
				t.Fatalf("trial %d kernel %v: f32 %v vs f16 %v", trial, k, full, half)
			}
		}
	}
}

func TestDotF16KernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 3, 4, 5, 8, 100} {
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		ea, eb := EncodeF16(a), EncodeF16(b)
		s := float64(DotF16(KernelScalar, ea, eb))
		u := float64(DotF16(KernelSIMD, ea, eb))
		if math.Abs(s-u) > 1e-2*math.Max(1, math.Abs(s)) {
			t.Errorf("n=%d: scalar %v vs unrolled %v", n, s, u)
		}
	}
}

func TestDotF16PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DotF16(KernelScalar, F16Vector{0}, F16Vector{0, 0})
}

// TestF16MonotoneRounding: rounding is monotone — encoding preserves order
// for representative samples.
func TestF16MonotoneRounding(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	prevF := float32(-2)
	var prevH float32
	for i := 0; i < 1000; i++ {
		f := prevF + float32(rng.Float64())*0.01
		h := F16FromFloat32(f).Float32()
		if i > 0 && h < prevH {
			t.Fatalf("rounding not monotone: f16(%v)=%v < f16(prev)=%v", f, h, prevH)
		}
		prevF, prevH = f, h
	}
}

package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestKernelString(t *testing.T) {
	if KernelScalar.String() != "NO-SIMD" {
		t.Errorf("KernelScalar = %q", KernelScalar.String())
	}
	if KernelSIMD.String() != "SIMD" {
		t.Errorf("KernelSIMD = %q", KernelSIMD.String())
	}
	if Kernel(42).String() != "Kernel(42)" {
		t.Errorf("unknown kernel = %q", Kernel(42).String())
	}
}

func TestDotBasics(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	want := float32(32)
	for _, k := range []Kernel{KernelScalar, KernelSIMD} {
		if got := Dot(k, a, b); got != want {
			t.Errorf("%v Dot = %v, want %v", k, got, want)
		}
	}
}

func TestDotEmpty(t *testing.T) {
	for _, k := range []Kernel{KernelScalar, KernelSIMD} {
		if got := Dot(k, nil, nil); got != 0 {
			t.Errorf("%v Dot(nil,nil) = %v, want 0", k, got)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	for _, k := range []Kernel{KernelScalar, KernelSIMD} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: expected panic on mismatched dims", k)
				}
			}()
			Dot(k, []float32{1}, []float32{1, 2})
		}()
	}
}

func TestCheckedDot(t *testing.T) {
	if _, err := CheckedDot(KernelScalar, []float32{1}, []float32{1, 2}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
	got, err := CheckedDot(KernelSIMD, []float32{2, 3}, []float32{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 23 {
		t.Errorf("CheckedDot = %v, want 23", got)
	}
}

// TestDotKernelsAgree is the core property: scalar and unrolled kernels
// compute identical dot products (within reassociation error).
func TestDotKernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 100, 256, 1000} {
		a := randomVec(rng, n)
		b := randomVec(rng, n)
		s := float64(Dot(KernelScalar, a, b))
		u := float64(Dot(KernelSIMD, a, b))
		if !almostEqual(s, u, 1e-4) {
			t.Errorf("n=%d: scalar %v vs simd %v", n, s, u)
		}
	}
}

func TestDotKernelsAgreeQuick(t *testing.T) {
	f := func(raw []float32) bool {
		// Bound values to avoid inf/NaN overflow noise.
		a := make([]float32, len(raw))
		b := make([]float32, len(raw))
		for i, x := range raw {
			v := float32(math.Mod(float64(x), 100))
			if math.IsNaN(float64(v)) {
				v = 1
			}
			a[i] = v
			b[len(raw)-1-i] = v * 0.5
		}
		s := float64(Dot(KernelScalar, a, b))
		u := float64(Dot(KernelSIMD, a, b))
		return almostEqual(s, u, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNorm(t *testing.T) {
	if got := Norm([]float32{3, 4}); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := Norm(nil); got != 0 {
		t.Errorf("Norm(nil) = %v, want 0", got)
	}
	if got := SquaredNorm([]float32{3, 4}); got != 25 {
		t.Errorf("SquaredNorm = %v, want 25", got)
	}
}

func TestNormalize(t *testing.T) {
	v := []float32{3, 4}
	Normalize(v)
	if !IsNormalized(v, 1e-5) {
		t.Errorf("not normalized: %v", v)
	}
	if !almostEqual(float64(v[0]), 0.6, 1e-5) || !almostEqual(float64(v[1]), 0.8, 1e-5) {
		t.Errorf("Normalize = %v", v)
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	v := []float32{0, 0, 0}
	Normalize(v)
	for _, x := range v {
		if x != 0 {
			t.Fatalf("zero vector changed: %v", v)
		}
	}
}

func TestNormalizeInto(t *testing.T) {
	src := []float32{0, 5}
	dst := make([]float32, 2)
	NormalizeInto(dst, src)
	if dst[0] != 0 || dst[1] != 1 {
		t.Errorf("NormalizeInto = %v", dst)
	}
	// Zero vector copies through.
	zero := []float32{0, 0}
	NormalizeInto(dst, zero)
	if dst[0] != 0 || dst[1] != 0 {
		t.Errorf("NormalizeInto(zero) = %v", dst)
	}
	// Aliasing is allowed.
	v := []float32{3, 4}
	NormalizeInto(v, v)
	if !IsNormalized(v, 1e-5) {
		t.Errorf("aliased NormalizeInto = %v", v)
	}
}

func TestNormalizeIntoPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NormalizeInto(make([]float32, 3), make([]float32, 2))
}

// TestNormalizeProperty: normalized random vectors have unit norm.
func TestNormalizeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		v := randomVec(rng, 1+rng.Intn(300))
		Normalize(v)
		if !IsNormalized(v, 1e-4) {
			t.Fatalf("iter %d: norm = %v", i, Norm(v))
		}
	}
}

func TestCosine(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	c := []float32{1, 0}
	d := []float32{-1, 0}
	for _, k := range []Kernel{KernelScalar, KernelSIMD} {
		if got := Cosine(k, a, b); !almostEqual(float64(got), 0, 1e-6) {
			t.Errorf("cos(orthogonal) = %v", got)
		}
		if got := Cosine(k, a, c); !almostEqual(float64(got), 1, 1e-6) {
			t.Errorf("cos(same) = %v", got)
		}
		if got := Cosine(k, a, d); !almostEqual(float64(got), -1, 1e-6) {
			t.Errorf("cos(opposite) = %v", got)
		}
	}
}

func TestCosineZeroVector(t *testing.T) {
	if got := Cosine(KernelScalar, []float32{0, 0}, []float32{1, 2}); got != 0 {
		t.Errorf("cos with zero vec = %v, want 0", got)
	}
}

// TestCosineNormalizedMatchesCosine validates the identity the tensor join
// depends on: for unit vectors, cosine == dot.
func TestCosineNormalizedMatchesCosine(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		a := Normalize(randomVec(rng, 100))
		b := Normalize(randomVec(rng, 100))
		full := float64(Cosine(KernelSIMD, a, b))
		dot := float64(CosineNormalized(KernelSIMD, a, b))
		if !almostEqual(full, dot, 1e-3) {
			t.Fatalf("iter %d: cosine %v vs dot %v", i, full, dot)
		}
	}
}

func TestCosineDistance(t *testing.T) {
	a := []float32{1, 0}
	if got := CosineDistance(KernelScalar, a, a); !almostEqual(float64(got), 0, 1e-6) {
		t.Errorf("distance to self = %v", got)
	}
	b := []float32{-1, 0}
	if got := CosineDistance(KernelScalar, a, b); !almostEqual(float64(got), 2, 1e-6) {
		t.Errorf("distance to opposite = %v", got)
	}
}

func TestCosineRange(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		a := randomVec(rng, 32)
		b := randomVec(rng, 32)
		c := float64(Cosine(KernelSIMD, a, b))
		if c < -1.0001 || c > 1.0001 {
			t.Fatalf("cosine out of range: %v", c)
		}
	}
}

func TestAdd(t *testing.T) {
	got, err := Add([]float32{1, 2}, []float32{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 || got[1] != 6 {
		t.Errorf("Add = %v", got)
	}
	if _, err := Add([]float32{1}, []float32{1, 2}); err == nil {
		t.Error("expected error on mismatch")
	}
}

func TestAXPY(t *testing.T) {
	y := []float32{1, 1}
	AXPY(2, []float32{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("AXPY = %v", y)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	AXPY(1, []float32{1}, []float32{1, 2})
}

func TestScaleClone(t *testing.T) {
	v := []float32{1, 2}
	c := Clone(v)
	Scale(3, v)
	if v[0] != 3 || v[1] != 6 {
		t.Errorf("Scale = %v", v)
	}
	if c[0] != 1 || c[1] != 2 {
		t.Errorf("Clone mutated: %v", c)
	}
}

func TestEqual(t *testing.T) {
	if !Equal([]float32{1, 2}, []float32{1.000001, 2}, 1e-3) {
		t.Error("expected equal within eps")
	}
	if Equal([]float32{1}, []float32{1, 2}, 1) {
		t.Error("length mismatch should not be equal")
	}
	if Equal([]float32{1}, []float32{2}, 0.5) {
		t.Error("expected not equal")
	}
}

// Cauchy-Schwarz property: |a·b| <= ||a||*||b||.
func TestCauchySchwarzProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 200; i++ {
		a := randomVec(rng, 64)
		b := randomVec(rng, 64)
		lhs := math.Abs(float64(Dot(KernelSIMD, a, b)))
		rhs := float64(Norm(a)) * float64(Norm(b))
		if lhs > rhs*(1+1e-4) {
			t.Fatalf("Cauchy-Schwarz violated: %v > %v", lhs, rhs)
		}
	}
}

func randomVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

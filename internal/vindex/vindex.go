// Package vindex defines the vector-index access-path abstraction: the
// contract a physical index must satisfy to serve the E-join's probe side.
// The paper frames indexes as "physical access method options" (Section
// II-B); this interface is that option point — HNSW (graph) and IVF-Flat
// (inverted file) both implement it, and the planner is agnostic.
package vindex

import "ejoin/internal/relational"

// Hit is one probe result.
type Hit struct {
	// ID is the indexed row id.
	ID int
	// Sim is the cosine similarity to the query.
	Sim float32
}

// Index is a built vector index that answers filtered top-k probes.
type Index interface {
	// Dim is the indexed vector dimensionality.
	Dim() int
	// Len is the number of indexed vectors.
	Len() int
	// DistanceCalls reports cumulative vector comparisons (the probe-cost
	// observable the cost model's Iprobe abstracts).
	DistanceCalls() int64
	// TopK returns the (approximately) k most similar indexed vectors to
	// q, sorted descending. beam widens the search (efSearch for graph
	// indexes, nprobe for inverted files); <=0 uses the index default.
	// filter applies the index's pre-filtering semantics.
	TopK(q []float32, k, beam int, filter *relational.Bitmap) ([]Hit, error)
}

// Package vindex defines the vector-index access-path abstraction: the
// contract a physical index must satisfy to serve the E-join's probe side.
// The paper frames indexes as "physical access method options" (Section
// II-B); this interface is that option point — HNSW (graph) and IVF-Flat
// (inverted file) both implement it, and the planner is agnostic.
package vindex

import (
	"io"

	"ejoin/internal/mat"
	"ejoin/internal/relational"
)

// Hit is one probe result.
type Hit struct {
	// ID is the indexed row id.
	ID int
	// Sim is the cosine similarity to the query.
	Sim float32
}

// Index is a built vector index that answers filtered top-k probes.
type Index interface {
	// Dim is the indexed vector dimensionality.
	Dim() int
	// Len is the number of indexed vectors.
	Len() int
	// DistanceCalls reports cumulative vector comparisons (the probe-cost
	// observable the cost model's Iprobe abstracts).
	DistanceCalls() int64
	// TopK returns the (approximately) k most similar indexed vectors to
	// q, sorted descending. beam widens the search (efSearch for graph
	// indexes, nprobe for inverted files); <=0 uses the index default.
	// filter applies the index's pre-filtering semantics.
	TopK(q []float32, k, beam int, filter *relational.Bitmap) ([]Hit, error)
}

// MutableIndex is an Index that accepts incremental inserts: the live
// mutation subsystem appends each upsert batch's vectors instead of
// rebuilding (construction dominates index cost — Table I's "Build"
// column — so a serving index must absorb writes in place). Ids are
// assigned sequentially from Len(), matching the physical row ids of the
// table the index covers. Deletes are not structural: tombstoned rows are
// masked by the search-time filter, and an inverted-file index compacts
// them away when its deleted fraction triggers a re-cluster.
type MutableIndex interface {
	Index
	// Add appends vecs' rows (normalized copies) with ids Len()..Len()+n-1.
	// Safe to call concurrently with TopK.
	Add(vecs *mat.Matrix) error
}

// Snapshotter is the optional durability contract: an index that can
// serialize itself into a self-contained, versioned binary payload.
// Construction dominates index cost (Table I's "Build" column), so a
// production deployment snapshots built indexes and restores them on
// boot instead of re-paying k-means or graph insertion. The durable
// layer wraps the payload in a checksummed container keyed by Kind and
// dispatches Load-side decoding through a kind registry.
type Snapshotter interface {
	Index
	// Kind identifies the on-disk decoder for this index family
	// (e.g. "hnsw", "ivf-flat"). Stable across releases.
	Kind() string
	// WriteSnapshot serializes the index. The index must not be mutated
	// concurrently. The payload must round-trip through the registered
	// loader into an index with identical TopK results.
	WriteSnapshot(w io.Writer) error
}

// TunableIndex is the capability interface for indexes with a runtime
// recall/cost knob — the default beam a TopK with beam<=0 searches at
// (NProbe for inverted files, efSearch for graphs, the rerank pool for
// quantized indexes). The SLO-driven tuner nudges this knob between
// audit rounds; implementations must make both methods safe against
// concurrent TopK calls.
type TunableIndex interface {
	Index
	// Knob returns the knob's name (stable, e.g. "nprobe") and its
	// current value.
	Knob() (name string, value int)
	// SetKnob applies value, clamped to the index's valid range, and
	// returns the value actually in effect afterwards.
	SetKnob(value int) int
}

package exec

import (
	"context"
	"time"
)

// Limit short-circuits the pipeline after N matches: once satisfied it
// stops pulling its input entirely, so upstream blocks are never scanned,
// embedded, or probed. This is where streaming beats materialization
// hardest — a LIMIT 10 over a million-row probe side touches a handful of
// blocks instead of the whole input.
type Limit struct {
	Input Operator
	N     int

	st      OpStats
	emitted int
	// Truncated reports the stream was cut before its natural end: the
	// limit was reached while the input may have had more matches.
	Truncated bool
}

// Open implements Operator.
func (l *Limit) Open(ctx context.Context) error {
	l.st = OpStats{Name: "limit"}
	l.emitted = 0
	l.Truncated = false
	return l.Input.Open(ctx)
}

// Next implements Operator.
func (l *Limit) Next(ctx context.Context) (*Batch, error) {
	if l.emitted >= l.N {
		return nil, nil
	}
	b, err := l.Input.Next(ctx)
	if err != nil || b == nil {
		return nil, err
	}
	start := time.Now()
	l.st.RowsIn += int64(len(b.Matches))
	if keep := l.N - l.emitted; len(b.Matches) > keep {
		l.st.EarlyOutRows += int64(len(b.Matches) - keep)
		b.Matches = b.Matches[:keep]
	}
	l.emitted += len(b.Matches)
	if l.emitted >= l.N {
		l.Truncated = true
	}
	l.st.RowsOut += int64(len(b.Matches))
	l.st.Batches++
	l.st.Elapsed += time.Since(start)
	return b, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Input.Close() }

// Stats implements Operator.
func (l *Limit) Stats() OpStats { return l.st }

package exec

import (
	"context"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/embstore"
	"ejoin/internal/model"
	"ejoin/internal/relational"
)

// Embed applies E_µ to each block: the batch's texts are gathered from
// the table and embedded through the shared store (cache hits and merged
// in-flight calls skip the model) or the chunked parallel scheduler when
// no store is attached. Batches that already carry embeddings (vector
// column projected at the scan) pass through untouched.
//
// Because embedding happens per block, a pipeline that stops early — a
// LIMIT satisfied, a cancelled request — never pays model calls for the
// rows it did not reach; that is the streaming engine's main saving on
// cold corpora.
type Embed struct {
	Input Operator
	// Table/Column locate the context-rich text column.
	Table  *relational.Table
	Column string
	// Model is E_µ; Store, when set, is the shared embedding cache.
	Model model.Model
	Store *embstore.Store
	// Threads caps embedding parallelism within a block.
	Threads int

	st    OpStats
	texts relational.StringColumn
	batch embstore.BatchStats
}

// Open resolves the text column.
func (e *Embed) Open(ctx context.Context) error {
	e.st = OpStats{Name: "embed"}
	e.batch = embstore.BatchStats{}
	if err := e.Input.Open(ctx); err != nil {
		return err
	}
	col, err := e.Table.Strings(e.Column)
	if err != nil {
		return err
	}
	e.texts = col
	return nil
}

// Next embeds the next block.
func (e *Embed) Next(ctx context.Context) (*Batch, error) {
	b, err := e.Input.Next(ctx)
	if err != nil || b == nil {
		return nil, err
	}
	e.st.RowsIn += int64(b.Len())
	if b.Emb != nil {
		e.st.RowsOut += int64(b.Len())
		e.st.Batches++
		return b, nil
	}
	start := time.Now()
	texts := make([]string, len(b.Rows))
	for i, r := range b.Rows {
		texts[i] = e.texts[r]
	}
	if e.Store != nil {
		emb, bs, err := e.Store.EmbedAll(ctx, e.Model, texts, embstore.BatchOptions{Threads: e.Threads})
		if err != nil {
			return nil, err
		}
		b.Emb = emb
		e.batch.Hits += bs.Hits
		e.batch.Misses += bs.Misses
		e.batch.Merged += bs.Merged
		e.batch.ModelCalls += bs.ModelCalls
	} else {
		emb, err := core.EmbedParallel(ctx, e.Model, texts, e.Threads)
		if err != nil {
			return nil, err
		}
		b.Emb = emb
		e.batch.Misses += int64(len(texts))
		e.batch.ModelCalls += int64(len(texts))
	}
	e.st.Elapsed += time.Since(start)
	e.st.RowsOut += int64(b.Len())
	e.st.Batches++
	return b, nil
}

// Close implements Operator.
func (e *Embed) Close() error { return e.Input.Close() }

// Stats implements Operator.
func (e *Embed) Stats() OpStats { return e.st }

// BatchStats is the cumulative cache/model accounting across all blocks
// (the same split the materializing executor reports per side).
func (e *Embed) BatchStats() embstore.BatchStats { return e.batch }

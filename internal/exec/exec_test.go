package exec

import (
	"context"
	"testing"

	"ejoin/internal/core"
	"ejoin/internal/mat"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
)

func testTable(t *testing.T, n int) *relational.Table {
	t.Helper()
	words := make(relational.StringColumn, n)
	nums := make(relational.Int64Column, n)
	for i := 0; i < n; i++ {
		words[i] = string(rune('a' + i%26))
		nums[i] = int64(i)
	}
	tbl, err := relational.NewTable(
		relational.Schema{{Name: "word", Type: relational.String}, {Name: "n", Type: relational.Int64}},
		[]relational.Column{words, nums},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestScanBlocksAndPushdown(t *testing.T) {
	tbl := testTable(t, 10)
	s := &Scan{
		Table:     tbl,
		Name:      "T",
		Preds:     []relational.Pred{{Column: "n", Op: relational.LE, Value: int64(6)}},
		BlockRows: 3,
	}
	ctx := context.Background()
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	// The full post-predicate selection is resolved at Open, before any
	// block is pulled: rows 0..6 survive n <= 6.
	if got := s.Rows(); len(got) != 7 || got[0] != 0 || got[6] != 6 {
		t.Fatalf("Rows() = %v, want 0..6", got)
	}
	var sizes []int
	var rows []int
	for {
		b, err := s.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		sizes = append(sizes, b.Len())
		rows = append(rows, b.Rows...)
	}
	if len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 3 || sizes[2] != 1 {
		t.Fatalf("block sizes = %v, want [3 3 1]", sizes)
	}
	for i, r := range rows {
		if r != i {
			t.Fatalf("row stream %v, want ascending 0..6", rows)
		}
	}
	st := s.Stats()
	if st.Name != "scan" || st.RowsOut != 7 || st.Batches != 3 {
		t.Errorf("stats = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestScanBatchesAreMutationSafe(t *testing.T) {
	// Downstream operators compact batches in place; the scan must hand
	// out copies so its resolved selection (used for LeftRows) survives.
	tbl := testTable(t, 6)
	s := &Scan{Table: tbl, BlockRows: 3}
	ctx := context.Background()
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	b, err := s.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b.Rows[0] = 999
	if got := s.Rows(); got[0] != 0 {
		t.Fatalf("mutating a batch corrupted the scan selection: %v", got)
	}
	b2, err := s.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Rows[0] != 3 {
		t.Fatalf("second block starts at %d, want 3", b2.Rows[0])
	}
}

func TestRowFilterCompacts(t *testing.T) {
	tbl := testTable(t, 9)
	s := &Scan{Table: tbl, BlockRows: 4}
	f := &RowFilter{
		Input: s,
		Table: tbl,
		Preds: []relational.Pred{{Column: "n", Op: relational.LE, Value: int64(5)}},
	}
	ctx := context.Background()
	if err := f.Open(ctx); err != nil {
		t.Fatal(err)
	}
	var rows []int
	for {
		b, err := f.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		rows = append(rows, b.Rows...)
	}
	if len(rows) != 6 {
		t.Fatalf("filtered rows = %v, want 0..5", rows)
	}
	for i, r := range rows {
		if r != i {
			t.Fatalf("filtered rows = %v, want 0..5", rows)
		}
	}
	st := f.Stats()
	if st.RowsIn != 9 || st.RowsOut != 6 {
		t.Errorf("stats = %+v", st)
	}
	// The Filter helper applies the same bitmap to a full selection (used
	// to report complete LeftRows even when a LIMIT stops the stream).
	if sel := f.Filter(relational.All(9)); len(sel) != 6 || sel[5] != 5 {
		t.Errorf("Filter(All) = %v", sel)
	}
}

// vecSource feeds prepared batches and counts how often it is pulled.
type vecSource struct {
	batches []*Batch
	pos     int
	pulls   int
	st      OpStats
}

func (s *vecSource) Open(ctx context.Context) error { return nil }

func (s *vecSource) Next(ctx context.Context) (*Batch, error) {
	s.pulls++
	if s.pos >= len(s.batches) {
		return nil, nil
	}
	b := s.batches[s.pos]
	s.pos++
	return b, nil
}

func (s *vecSource) Close() error   { return nil }
func (s *vecSource) Stats() OpStats { return s.st }

// embBatch builds a batch whose embedding rows are the given unit vectors.
func embBatch(rows []int, vecs [][]float32) *Batch {
	m := mat.New(len(vecs), len(vecs[0]))
	for i, v := range vecs {
		copy(m.Row(i), v)
	}
	return &Batch{Rows: rows, Emb: m}
}

func TestSemFilterFusion(t *testing.T) {
	// Query [1,0]; rows 0 and 2 align with it, row 1 is orthogonal, row 3
	// is at cos 0.6. Threshold 0.5 keeps 0, 2, 3.
	src := &vecSource{batches: []*Batch{
		embBatch([]int{0, 1, 2, 3}, [][]float32{{1, 0}, {0, 1}, {1, 0}, {0.6, 0.8}}),
		embBatch([]int{4, 5}, [][]float32{{0, 1}, {0, -1}}), // fully rejected block
	}}
	f := &SemFilter{Input: src, Query: []float32{1, 0}, Threshold: 0.5, Kernel: vec.KernelScalar}
	// The probe consumes the filter's survivors directly: the same block
	// embeddings feed both, so rejected rows are never probed.
	build := mat.New(1, 2)
	copy(build.Row(0), []float32{1, 0})
	p := &ThresholdProbe{Input: f, Threshold: 0.9, Opts: core.Options{Kernel: vec.KernelScalar, Threads: 1}}
	p.Build, p.BuildRows = build, []int{7}

	ctx := context.Background()
	if err := p.Open(ctx); err != nil {
		t.Fatal(err)
	}
	var matches []core.Match
	for {
		b, err := p.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		matches = append(matches, b.Matches...)
	}
	fs := f.Stats()
	if fs.RowsIn != 6 || fs.RowsOut != 3 || fs.EarlyOutRows != 3 {
		t.Errorf("semfilter stats = %+v, want 6 in / 3 out / 3 early-out", fs)
	}
	// Fusion contract: the probe saw exactly the filter's survivors.
	if ps := p.Stats(); ps.RowsIn != fs.RowsOut {
		t.Errorf("probe saw %d rows, filter emitted %d — rejected rows reached the probe", ps.RowsIn, fs.RowsOut)
	}
	// Rows 0 and 2 match the build vector at sim 1; row 3 is below 0.9.
	want := []core.Match{{Left: 0, Right: 7, Sim: 1}, {Left: 2, Right: 7, Sim: 1}}
	if len(matches) != len(want) {
		t.Fatalf("matches = %v, want %v", matches, want)
	}
	for i := range want {
		if matches[i].Left != want[i].Left || matches[i].Right != want[i].Right {
			t.Fatalf("matches = %v, want %v", matches, want)
		}
	}
}

// matchSource emits batches of pre-made matches, counting pulls, so a
// LIMIT's short-circuit (not pulling upstream once satisfied) is provable.
type matchSource struct {
	perBatch int
	next     int
	pulls    int
	st       OpStats
}

func (s *matchSource) Open(ctx context.Context) error { return nil }

func (s *matchSource) Next(ctx context.Context) (*Batch, error) {
	s.pulls++
	b := &Batch{}
	for i := 0; i < s.perBatch; i++ {
		b.Matches = append(b.Matches, core.Match{Left: s.next, Right: 0, Sim: 1})
		s.next++
	}
	return b, nil
}

func (s *matchSource) Close() error   { return nil }
func (s *matchSource) Stats() OpStats { return s.st }

func TestLimitShortCircuits(t *testing.T) {
	// An endless source: only the limit's refusal to pull can end this.
	src := &matchSource{perBatch: 4}
	l := &Limit{Input: src, N: 10}
	ctx := context.Background()
	matches, err := Drain(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 10 {
		t.Fatalf("drained %d matches, want 10", len(matches))
	}
	for i, m := range matches {
		if m.Left != i {
			t.Fatalf("match %d = %+v, want first-N in order", i, m)
		}
	}
	if !l.Truncated {
		t.Error("limit hit on an endless stream must report Truncated")
	}
	// 10 matches at 4 per batch: exactly 3 pulls, then the limit returns
	// EOS on its own without touching the source again.
	if src.pulls != 3 {
		t.Errorf("source pulled %d times, want 3", src.pulls)
	}
	if _, err := l.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if src.pulls != 3 {
		t.Errorf("post-EOS Next pulled the source (pulls=%d)", src.pulls)
	}
	st := l.Stats()
	if st.RowsOut != 10 || st.EarlyOutRows != 2 {
		t.Errorf("stats = %+v, want 10 out / 2 early-out (third batch trimmed)", st)
	}
}

func TestThresholdProbeOrderedWithinBlock(t *testing.T) {
	// Matches within a block must come out sorted by (Left, Right) so
	// block-ascending concatenation is byte-identical to a materializing
	// run — the property LIMIT's "first N" semantics rest on.
	build := mat.New(2, 2)
	copy(build.Row(0), []float32{1, 0})
	copy(build.Row(1), []float32{0.8, 0.6})
	src := &vecSource{batches: []*Batch{
		embBatch([]int{3, 5}, [][]float32{{0.8, 0.6}, {1, 0}}),
	}}
	p := &ThresholdProbe{Input: src, Threshold: 0.7, Opts: core.Options{Kernel: vec.KernelScalar, Threads: 1}}
	p.Build, p.BuildRows = build, []int{0, 1}
	matches, err := Drain(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(matches); i++ {
		a, b := matches[i-1], matches[i]
		if a.Left > b.Left || (a.Left == b.Left && a.Right >= b.Right) {
			t.Fatalf("matches not ordered by (Left, Right): %v", matches)
		}
	}
	if len(matches) != 4 {
		t.Fatalf("matches = %v, want all 4 pairs above 0.7", matches)
	}
}

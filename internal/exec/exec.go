// Package exec is the streaming block-at-a-time execution engine: a
// pull-based (Volcano-style) operator pipeline over fixed-size columnar
// batches, replacing whole-input materialization for the join shapes that
// do not need it.
//
// The paper's cost model treats intermediate footprint as a first-class
// term; materializing both join inputs makes that footprint whole-table-
// sized regardless of what the query returns. Streaming keeps only the
// build side resident and pulls the probe side through the pipeline one
// block at a time, so peak residency is build-side + O(block) and a LIMIT
// can short-circuit upstream work (scan, embed, probe) it will never use.
//
// Operators compose bottom-up: Scan (predicate + projection pushdown) →
// Embed (chunked through embstore) → optional SemFilter (fused: the same
// block embeddings feed both the filter and the probe, and dropped rows
// are never probed) → one probe operator (ThresholdProbe, TopKProbe, or
// IndexProbe; build side resident) → optional Limit. Each operator tracks
// its own OpStats (rows in/out, batches, early-out counts, self time) for
// EXPLAIN ANALYZE and the /metrics exposition.
package exec

import (
	"context"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/mat"
)

// DefaultBlockSize is the number of probe-side rows per batch when the
// caller does not override it: large enough to amortize per-batch
// dispatch and keep the SIMD kernels fed, small enough that a block of
// embeddings stays cache- and admission-friendly.
const DefaultBlockSize = 4096

// Batch is one block of rows flowing through a pipeline. Source-side
// operators (Scan, Embed, SemFilter) populate Rows/Emb/Sims; probe and
// limit operators emit Matches. A batch is owned by its consumer: an
// operator may compact or mutate a batch it received before passing it on.
type Batch struct {
	// Rows are global row ids into the probe-side base table, ascending.
	Rows []int
	// Emb holds one unit-norm embedding row per entry of Rows (set by
	// Embed, or by Scan when projecting a vector column).
	Emb *mat.Matrix
	// Sims are per-row similarities against a semantic filter's query
	// vector (set by SemFilter).
	Sims []float32
	// Matches are join outputs with global row ids on both sides.
	Matches []core.Match
}

// Len is the number of source rows in the batch.
func (b *Batch) Len() int { return len(b.Rows) }

// OpStats is one operator's account of its work. Counters are cumulative
// over the operator's lifetime; Elapsed is self time (time inside this
// operator's Next, excluding time spent pulling its input).
type OpStats struct {
	// Name identifies the operator in metrics and EXPLAIN ANALYZE
	// ("scan", "embed", "semfilter", "probe:nlj", "probe:topk",
	// "probe:index", "limit").
	Name string
	// RowsIn/RowsOut count source rows (or matches, for match-valued
	// operators) entering and leaving the operator.
	RowsIn  int64
	RowsOut int64
	// Batches is the number of non-empty batches emitted.
	Batches int64
	// EarlyOutRows counts rows (or matches) the operator dropped or never
	// produced because of early termination: semantic-filter rejections,
	// residual-threshold drops in top-k, matches discarded by LIMIT.
	EarlyOutRows int64
	// Elapsed is cumulative self time.
	Elapsed time.Duration
}

// Operator is a pull-based pipeline stage. Open cascades to the input and
// acquires resources; Next returns the next batch or (nil, nil) at end of
// stream; Close cascades and releases. Operators are single-consumer and
// not safe for concurrent Next calls — parallelism lives inside the
// kernels a block is handed to, not across blocks.
type Operator interface {
	Open(ctx context.Context) error
	Next(ctx context.Context) (*Batch, error)
	Close() error
	Stats() OpStats
}

// Drain pulls op to end of stream, concatenating emitted matches. The
// batch-local match slices are appended, never aliased, so the result
// survives operator Close.
func Drain(ctx context.Context, op Operator) ([]core.Match, error) {
	var out []core.Match
	for {
		b, err := op.Next(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b.Matches...)
	}
}

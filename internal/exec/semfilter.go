package exec

import (
	"context"
	"time"

	"ejoin/internal/vec"
)

// SemFilter is the fused semantic filter: each block's embeddings are
// scored against one query vector and rows below the threshold are
// compacted away before the block reaches the probe. The fusion is the
// point — the filter consumes the same per-block embeddings the probe
// will use, so filtered rows are embedded exactly once and never probed,
// where a cascaded plan would materialize the filter's survivors and
// re-gather (or worse, re-embed) them for the join.
type SemFilter struct {
	Input Operator
	// Query is the unit-norm filter vector; rows keep iff cos >= Threshold.
	Query     []float32
	Threshold float32
	Kernel    vec.Kernel

	st OpStats
}

// Open implements Operator.
func (f *SemFilter) Open(ctx context.Context) error {
	f.st = OpStats{Name: "semfilter"}
	return f.Input.Open(ctx)
}

// Next scores and compacts the next block in place.
func (f *SemFilter) Next(ctx context.Context) (*Batch, error) {
	for {
		b, err := f.Input.Next(ctx)
		if err != nil || b == nil {
			return nil, err
		}
		start := time.Now()
		f.st.RowsIn += int64(b.Len())
		if b.Sims == nil || cap(b.Sims) < b.Len() {
			b.Sims = make([]float32, b.Len())
		}
		b.Sims = b.Sims[:b.Len()]
		w := 0
		for r, row := range b.Rows {
			sim := vec.Dot(f.Kernel, b.Emb.Row(r), f.Query)
			if sim < f.Threshold {
				continue
			}
			b.Rows[w] = row
			b.Sims[w] = sim
			if w != r {
				copy(b.Emb.Row(w), b.Emb.Row(r))
			}
			w++
		}
		f.st.EarlyOutRows += int64(b.Len() - w)
		b.Rows = b.Rows[:w]
		b.Sims = b.Sims[:w]
		b.Emb = b.Emb.Slice(0, w)
		f.st.Elapsed += time.Since(start)
		if w == 0 {
			continue // block fully rejected: pull the next one
		}
		f.st.RowsOut += int64(w)
		f.st.Batches++
		return b, nil
	}
}

// Close implements Operator.
func (f *SemFilter) Close() error { return f.Input.Close() }

// Stats implements Operator.
func (f *SemFilter) Stats() OpStats { return f.st }

package exec

import (
	"context"
	"fmt"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/mat"
	"ejoin/internal/quant"
)

// buildSide is the resident inner side shared by the scan-based probes:
// the optimizer's smaller-inner reordering already made it the cheaper
// side to hold, and it is encoded once at Open for the precision ladder.
type buildSide struct {
	// Build are the unit-norm build embeddings, one row per BuildRows entry.
	Build *mat.Matrix
	// BuildRows maps build-matrix rows to global row ids.
	BuildRows []int
}

// remap converts a kernel's local match offsets to global row ids.
func (p *buildSide) remap(probeRows []int, ms []core.Match) []core.Match {
	out := make([]core.Match, len(ms))
	for i, m := range ms {
		out[i] = core.Match{Left: probeRows[m.Left], Right: p.BuildRows[m.Right], Sim: m.Sim}
	}
	return out
}

// foldStats accumulates one kernel invocation's stats into an aggregate:
// counters and times sum; the peak intermediate is a high-water mark.
func foldStats(agg *core.Stats, s core.Stats) {
	agg.Comparisons += s.Comparisons
	agg.Blocks += s.Blocks
	agg.JoinTime += s.JoinTime
	agg.RerankTime += s.RerankTime
	if s.PeakIntermediateBytes > agg.PeakIntermediateBytes {
		agg.PeakIntermediateBytes = s.PeakIntermediateBytes
	}
}

// ThresholdProbe is the block nested-loop threshold join: the build side
// stays resident (encoded once to the plan's precision) while probe
// blocks stream through the existing F32/F16/int8 kernels. Each kernel
// call sorts its matches by (probe, build) offset and blocks arrive in
// ascending probe order, so the concatenated output is globally ordered
// exactly like the materializing executor's — byte-identical results,
// which is what the differential harness and LIMIT's first-N semantics
// rely on.
type ThresholdProbe struct {
	Input Operator
	buildSide
	Threshold float32
	// Tensor selects the blocked-GEMM kernel (StrategyTensor) over
	// tuple-at-a-time NLJ.
	Tensor bool
	// Precision is the scan rung (F16/int8 encode the build once at Open
	// and each probe block on arrival); PrecisionSlack, when positive, is
	// the drift tolerance a cost-based int8 choice was made under.
	Precision      quant.Precision
	PrecisionSlack float64
	Opts           core.Options

	st  OpStats
	agg core.Stats
	// buildF16/buildI8 are the once-encoded build side.
	buildF16 *mat.F16Matrix
	buildI8  *quant.Int8Matrix
	// DemotedBlocks counts probe blocks the int8 slack guard ran exact:
	// per-row scales make block-wise encoding identical to whole-matrix
	// encoding, but the error bound is per pair of max scales, so the
	// guard re-checks each block against the planner's promised slack and
	// demotes just that block to F32 (finer-grained than the materializing
	// path's whole-scan demotion).
	DemotedBlocks int64
	blocks        int64
}

// Open encodes the resident build side.
func (p *ThresholdProbe) Open(ctx context.Context) error {
	p.st = OpStats{Name: "probe:nlj"}
	if p.Tensor {
		p.st.Name = "probe:tensor"
	}
	p.agg = core.Stats{}
	p.DemotedBlocks, p.blocks = 0, 0
	if err := p.Input.Open(ctx); err != nil {
		return err
	}
	if p.Build == nil {
		return fmt.Errorf("exec: threshold probe has no build side")
	}
	switch p.Precision {
	case quant.PrecisionF16:
		p.buildF16 = mat.EncodeF16(p.Build)
	case quant.PrecisionInt8:
		p.buildI8 = quant.EncodeInt8(p.Build)
	case quant.PrecisionPQ:
		return fmt.Errorf("exec: pq is an index access path, not a scan precision")
	}
	return nil
}

// Next probes the next block against the resident build side.
func (p *ThresholdProbe) Next(ctx context.Context) (*Batch, error) {
	b, err := p.Input.Next(ctx)
	if err != nil || b == nil {
		return nil, err
	}
	start := time.Now()
	p.st.RowsIn += int64(b.Len())
	p.blocks++
	res, err := p.probeBlock(ctx, b.Emb)
	if err != nil {
		return nil, err
	}
	foldStats(&p.agg, res.Stats)
	b.Matches = p.remap(b.Rows, res.Matches)
	b.Emb, b.Sims = nil, nil
	p.st.RowsOut += int64(len(b.Matches))
	p.st.Batches++
	p.st.Elapsed += time.Since(start)
	return b, nil
}

// probeBlock runs one block through the precision ladder's kernel.
func (p *ThresholdProbe) probeBlock(ctx context.Context, block *mat.Matrix) (*core.Result, error) {
	switch p.Precision {
	case quant.PrecisionF16:
		return core.NLJF16(ctx, mat.EncodeF16(block), p.buildF16, p.Threshold, p.Opts)
	case quant.PrecisionInt8:
		lq := quant.EncodeInt8(block)
		if p.PrecisionSlack > 0 &&
			float64(quant.Int8DotErrorBound(lq.Cols(), lq.MaxScale(), p.buildI8.MaxScale())) > p.PrecisionSlack {
			p.DemotedBlocks++
			break
		}
		return core.NLJI8(ctx, lq, p.buildI8, p.Threshold, p.Opts)
	}
	if p.Tensor {
		return core.TensorJoin(ctx, block, p.Build, p.Threshold, p.Opts)
	}
	return core.NLJ(ctx, block, p.Build, p.Threshold, p.Opts)
}

// AllDemoted reports whether every probed block fell back to the exact
// scan — the streaming analogue of the materializing executor's
// whole-scan demotion, used to keep the plan's reported precision honest.
func (p *ThresholdProbe) AllDemoted() bool {
	return p.blocks > 0 && p.DemotedBlocks == p.blocks
}

// Close implements Operator.
func (p *ThresholdProbe) Close() error { return p.Input.Close() }

// Stats implements Operator.
func (p *ThresholdProbe) Stats() OpStats { return p.st }

// CoreStats is the aggregated kernel accounting across all blocks.
func (p *ThresholdProbe) CoreStats() core.Stats { return p.agg }

// TopKProbe streams probe blocks through the exact top-k kernel against
// the resident build side. Top-k is per probe row, so blocking the probe
// side cannot change any row's result set; the kernel's per-row heap
// already tightens its admission threshold as candidates accumulate
// (early-out on pairs below the current k-th similarity), and an optional
// residual threshold drops sub-threshold matches before they leave the
// operator, counted as early-out rows.
type TopKProbe struct {
	Input Operator
	buildSide
	K int
	// Residual, when > -1, additionally filters matches (range condition
	// over top-k).
	Residual float32
	Opts     core.Options

	st  OpStats
	agg core.Stats
}

// Open implements Operator.
func (p *TopKProbe) Open(ctx context.Context) error {
	p.st = OpStats{Name: "probe:topk"}
	p.agg = core.Stats{}
	if err := p.Input.Open(ctx); err != nil {
		return err
	}
	if p.Build == nil {
		return fmt.Errorf("exec: top-k probe has no build side")
	}
	return nil
}

// Next implements Operator.
func (p *TopKProbe) Next(ctx context.Context) (*Batch, error) {
	b, err := p.Input.Next(ctx)
	if err != nil || b == nil {
		return nil, err
	}
	start := time.Now()
	p.st.RowsIn += int64(b.Len())
	res, err := core.TensorTopK(ctx, b.Emb, p.Build, p.K, p.Opts)
	if err != nil {
		return nil, err
	}
	foldStats(&p.agg, res.Stats)
	matches := res.Matches
	if p.Residual > -1 {
		kept := matches[:0]
		for _, m := range matches {
			if m.Sim >= p.Residual {
				kept = append(kept, m)
			}
		}
		p.st.EarlyOutRows += int64(len(matches) - len(kept))
		matches = kept
	}
	b.Matches = p.remap(b.Rows, matches)
	b.Emb, b.Sims = nil, nil
	p.st.RowsOut += int64(len(b.Matches))
	p.st.Batches++
	p.st.Elapsed += time.Since(start)
	return b, nil
}

// Close implements Operator.
func (p *TopKProbe) Close() error { return p.Input.Close() }

// Stats implements Operator.
func (p *TopKProbe) Stats() OpStats { return p.st }

// CoreStats is the aggregated kernel accounting across all blocks.
func (p *TopKProbe) CoreStats() core.Stats { return p.agg }

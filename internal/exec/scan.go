package exec

import (
	"context"
	"fmt"
	"time"

	"ejoin/internal/mat"
	"ejoin/internal/relational"
)

// Scan streams a base table's visible rows in ascending blocks, with both
// pushdowns applied at the source: relational predicates are evaluated
// once at Open into the scan's selection (rows failing them are never
// emitted, embedded, or probed), and only the columns the pipeline needs
// leave the operator — row ids always, plus the projected vector column
// when one backs the join. Everything else is late-materialized from the
// base table after the join, exactly like the materializing executor.
type Scan struct {
	// Table is the base table; Name labels it in stats.
	Table *relational.Table
	Name  string
	// Visible, when non-nil, is the MVCC visibility selection of the
	// generation snapshot the query pinned; nil means all physical rows.
	Visible relational.Selection
	// Preds are pushed-down relational predicates.
	Preds []relational.Pred
	// VectorColumn, when set, projects precomputed embeddings into each
	// batch (normalized per block, matching the materializing path).
	VectorColumn string
	// BlockRows is rows per batch; <=0 uses DefaultBlockSize.
	BlockRows int

	st   OpStats
	rows relational.Selection
	pos  int
	vc   *relational.VectorColumn
}

// Open resolves the scan's selection: visibility ∩ pushed-down predicates.
func (s *Scan) Open(ctx context.Context) error {
	s.st = OpStats{Name: "scan"}
	s.pos = 0
	rows := s.Visible
	if rows == nil {
		rows = relational.All(s.Table.NumRows())
	}
	s.st.RowsIn = int64(len(rows))
	if len(s.Preds) > 0 {
		sel, err := relational.And(s.Table, s.Preds...)
		if err != nil {
			return err
		}
		keep := relational.BitmapFromSelection(s.Table.NumRows(), sel)
		filtered := make(relational.Selection, 0, len(rows))
		for _, r := range rows {
			if keep.Get(r) {
				filtered = append(filtered, r)
			}
		}
		rows = filtered
	}
	s.rows = rows
	if s.VectorColumn != "" {
		vc, err := s.Table.Vectors(s.VectorColumn)
		if err != nil {
			return err
		}
		s.vc = vc
	}
	return nil
}

// Rows is the full post-predicate selection, available after Open. It is
// complete regardless of how far the stream was pulled — a LIMIT that
// stops the pipeline early does not censor it.
func (s *Scan) Rows() relational.Selection { return s.rows }

// Next emits the next block.
func (s *Scan) Next(ctx context.Context) (*Batch, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("exec: scan cancelled: %w", err)
	}
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	start := time.Now()
	n := s.BlockRows
	if n <= 0 {
		n = DefaultBlockSize
	}
	hi := s.pos + n
	if hi > len(s.rows) {
		hi = len(s.rows)
	}
	// Copy the block: downstream operators may compact Rows in place and
	// must not corrupt the scan's selection.
	block := make([]int, hi-s.pos)
	copy(block, s.rows[s.pos:hi])
	s.pos = hi
	b := &Batch{Rows: block}
	if s.vc != nil {
		m := mat.New(len(block), s.vc.Dim)
		for i, r := range block {
			copy(m.Row(i), s.vc.Row(r))
		}
		m.NormalizeRows()
		b.Emb = m
	}
	s.st.RowsOut += int64(len(block))
	s.st.Batches++
	s.st.Elapsed += time.Since(start)
	return b, nil
}

// Close implements Operator.
func (s *Scan) Close() error { return nil }

// Stats implements Operator.
func (s *Scan) Stats() OpStats { return s.st }

// RowFilter applies relational predicates mid-pipeline (above an Embed),
// compacting each batch. The optimizer's pushdown rule normally fuses
// predicates into the Scan; this operator exists for plans where the
// filter sits above E_µ, preserving the un-pushed-down cost (every
// scanned row is embedded) so streaming and materializing execution of
// the same plan report identical model work.
type RowFilter struct {
	Input Operator
	Table *relational.Table
	Preds []relational.Pred

	st   OpStats
	keep *relational.Bitmap
}

// Open evaluates the predicate bitmap once.
func (f *RowFilter) Open(ctx context.Context) error {
	f.st = OpStats{Name: "filter"}
	if err := f.Input.Open(ctx); err != nil {
		return err
	}
	sel, err := relational.And(f.Table, f.Preds...)
	if err != nil {
		return err
	}
	f.keep = relational.BitmapFromSelection(f.Table.NumRows(), sel)
	return nil
}

// Filter restricts a selection to the predicate-passing rows (used by the
// lowering layer to compute the full post-filter selection for feedback).
func (f *RowFilter) Filter(sel relational.Selection) relational.Selection {
	out := make(relational.Selection, 0, len(sel))
	for _, r := range sel {
		if f.keep.Get(r) {
			out = append(out, r)
		}
	}
	return out
}

// Next compacts the next input batch in place.
func (f *RowFilter) Next(ctx context.Context) (*Batch, error) {
	for {
		b, err := f.Input.Next(ctx)
		if err != nil || b == nil {
			return nil, err
		}
		start := time.Now()
		f.st.RowsIn += int64(b.Len())
		w := 0
		for r, row := range b.Rows {
			if !f.keep.Get(row) {
				continue
			}
			b.Rows[w] = row
			if b.Emb != nil && w != r {
				copy(b.Emb.Row(w), b.Emb.Row(r))
			}
			if b.Sims != nil {
				b.Sims[w] = b.Sims[r]
			}
			w++
		}
		b.Rows = b.Rows[:w]
		if b.Emb != nil {
			b.Emb = b.Emb.Slice(0, w)
		}
		if b.Sims != nil {
			b.Sims = b.Sims[:w]
		}
		f.st.Elapsed += time.Since(start)
		if w == 0 {
			continue // fully filtered block: pull the next one
		}
		f.st.RowsOut += int64(w)
		f.st.Batches++
		return b, nil
	}
}

// Close implements Operator.
func (f *RowFilter) Close() error { return f.Input.Close() }

// Stats implements Operator.
func (f *RowFilter) Stats() OpStats { return f.st }

package exec

import (
	"context"
	"fmt"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/vindex"
)

// IndexProbe streams probe blocks against a vector index. The index is
// already resident (or was built once before the stream started), so the
// operator holds no build matrix; Opts.RightFilter carries the inner
// side's MVCC visibility and predicate mask into the probes, exactly as
// in the materializing path.
type IndexProbe struct {
	Input Operator
	Index vindex.Index
	Cond  core.IndexJoinCondition
	Opts  core.Options
	// BuildRows, when non-nil, remaps index ids to global row ids (indexes
	// built on the fly over a filtered selection); nil means index ids are
	// already global.
	BuildRows []int

	st  OpStats
	agg core.Stats
}

// Open implements Operator.
func (p *IndexProbe) Open(ctx context.Context) error {
	p.st = OpStats{Name: "probe:index"}
	p.agg = core.Stats{}
	if p.Index == nil {
		return fmt.Errorf("exec: index probe has no index")
	}
	return p.Input.Open(ctx)
}

// Next implements Operator.
func (p *IndexProbe) Next(ctx context.Context) (*Batch, error) {
	b, err := p.Input.Next(ctx)
	if err != nil || b == nil {
		return nil, err
	}
	start := time.Now()
	p.st.RowsIn += int64(b.Len())
	res, err := core.IndexJoinWith(ctx, b.Emb, p.Index, p.Cond, p.Opts)
	if err != nil {
		return nil, err
	}
	foldStats(&p.agg, res.Stats)
	matches := make([]core.Match, len(res.Matches))
	for i, m := range res.Matches {
		right := m.Right
		if p.BuildRows != nil {
			right = p.BuildRows[right]
		}
		matches[i] = core.Match{Left: b.Rows[m.Left], Right: right, Sim: m.Sim}
	}
	b.Matches = matches
	b.Emb, b.Sims = nil, nil
	p.st.RowsOut += int64(len(b.Matches))
	p.st.Batches++
	p.st.Elapsed += time.Since(start)
	return b, nil
}

// Close implements Operator.
func (p *IndexProbe) Close() error { return p.Input.Close() }

// Stats implements Operator.
func (p *IndexProbe) Stats() OpStats { return p.st }

// CoreStats is the aggregated probe accounting across all blocks.
func (p *IndexProbe) CoreStats() core.Stats { return p.agg }

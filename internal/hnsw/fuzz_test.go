package hnsw

import (
	"bytes"
	"testing"
)

// FuzzLoad feeds arbitrary bytes to the index deserializer: it must reject
// garbage with an error, never panic, and never allocate absurdly.
func FuzzLoad(f *testing.F) {
	// Seed with a valid index file plus mutations.
	data := randomUnitVectors(1, 30, 4)
	ix, err := Build(data, Config{M: 4, EfConstruction: 16, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("EJHNSW01"))
	truncated := append([]byte{}, valid[:len(valid)/2]...)
	f.Add(truncated)
	corrupt := append([]byte{}, valid...)
	if len(corrupt) > 40 {
		corrupt[20] = 0xff
		corrupt[30] = 0xff
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, raw []byte) {
		loaded, err := Load(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Whatever loaded must be internally consistent enough to search.
		if loaded.Len() == 0 {
			return
		}
		q := make([]float32, loaded.Dim())
		q[0] = 1
		if _, err := loaded.Search(q, 1, SearchOptions{Ef: 4}); err != nil {
			t.Fatalf("loaded index cannot search: %v", err)
		}
	})
}

package hnsw

import (
	"testing"

	"ejoin/internal/mat"
	"ejoin/internal/relational"
)

// TestAddBatchSearchable: Add routes through the regular insert path, so a
// just-appended batch is immediately findable, ids continue from Len(),
// and tombstoned rows disappear behind the search-time filter.
func TestAddBatchSearchable(t *testing.T) {
	base := randomUnitVectors(41, 100, 16)
	ix, err := Build(base, Config{M: 8, EfConstruction: 64, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	added := randomUnitVectors(42, 20, 16)
	m := mat.New(20, 16)
	for i, v := range added {
		copy(m.Row(i), v)
	}
	if err := ix.Add(m); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 120 {
		t.Fatalf("len after add = %d, want 120", ix.Len())
	}
	for _, i := range []int{0, 10, 19} {
		res, err := ix.Search(added[i], 1, SearchOptions{Ef: 64})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].ID != 100+i {
			t.Fatalf("added vector %d: search returned %v", i, res)
		}
	}

	// A tombstone filter excludes an added row without touching the graph.
	live := relational.NewBitmap(120)
	for i := 0; i < 120; i++ {
		live.Set(i)
	}
	live.Clear(110)
	res, err := ix.Search(added[10], 1, SearchOptions{Ef: 64, Filter: live})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 1 && res[0].ID == 110 {
		t.Fatal("filtered-out row returned")
	}

	if err := ix.Add(nil); err != nil {
		t.Fatalf("nil add: %v", err)
	}
	if err := ix.Add(mat.New(1, 4)); err == nil {
		t.Fatal("dim-mismatched add accepted")
	}
}

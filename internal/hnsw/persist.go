package hnsw

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// Binary serialization of the index: vector databases persist indexes
// because construction dominates (Table I's "Build" cost; the recorded
// Figure 15 run spends 15+ seconds building what it probes for
// milliseconds). The format is little-endian, versioned, and
// self-contained.

var persistMagic = [8]byte{'E', 'J', 'H', 'N', 'S', 'W', '0', '1'}

// SnapshotKind is the durable-layer identifier for HNSW payloads.
const SnapshotKind = "hnsw"

// Kind implements vindex.Snapshotter.
func (ix *Index) Kind() string { return SnapshotKind }

// WriteSnapshot implements vindex.Snapshotter by delegating to Save: the
// existing format is already versioned (magic EJHNSW01) and
// self-contained.
func (ix *Index) WriteSnapshot(w io.Writer) error { return ix.Save(w) }

// Save writes the index. The index must not be mutated concurrently.
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(persistMagic[:]); err != nil {
		return fmt.Errorf("hnsw: writing header: %w", err)
	}
	le := binary.LittleEndian
	writeU64 := func(v uint64) error { return binary.Write(bw, le, v) }

	hdr := []uint64{
		uint64(ix.dim),
		uint64(ix.cfg.M),
		uint64(ix.cfg.EfConstruction),
		uint64(ix.cfg.EfSearch),
		uint64(ix.cfg.Seed),
		uint64(int64(ix.entry)),
		uint64(int64(ix.maxLvl)),
		uint64(len(ix.levels)),
		uint64(len(ix.links)),
	}
	for _, v := range hdr {
		if err := writeU64(v); err != nil {
			return fmt.Errorf("hnsw: writing header: %w", err)
		}
	}
	for _, l := range ix.levels {
		if err := writeU64(uint64(l)); err != nil {
			return fmt.Errorf("hnsw: writing levels: %w", err)
		}
	}
	for _, v := range ix.vectors {
		if err := binary.Write(bw, le, math.Float32bits(v)); err != nil {
			return fmt.Errorf("hnsw: writing vectors: %w", err)
		}
	}
	for _, layer := range ix.links {
		if err := writeU64(uint64(len(layer))); err != nil {
			return fmt.Errorf("hnsw: writing layer size: %w", err)
		}
		for id, neigh := range layer {
			if err := writeU64(uint64(id)); err != nil {
				return fmt.Errorf("hnsw: writing adjacency: %w", err)
			}
			if err := writeU64(uint64(len(neigh))); err != nil {
				return fmt.Errorf("hnsw: writing adjacency: %w", err)
			}
			for _, n := range neigh {
				if err := writeU64(uint64(n)); err != nil {
					return fmt.Errorf("hnsw: writing adjacency: %w", err)
				}
			}
		}
	}
	return bw.Flush()
}

// Load reads an index saved with Save.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("hnsw: reading header: %w", err)
	}
	if magic != persistMagic {
		return nil, fmt.Errorf("hnsw: bad magic %q (not an ejoin HNSW file?)", magic)
	}
	le := binary.LittleEndian
	readU64 := func() (uint64, error) {
		var v uint64
		err := binary.Read(br, le, &v)
		return v, err
	}
	var hdr [9]uint64
	for i := range hdr {
		v, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("hnsw: reading header: %w", err)
		}
		hdr[i] = v
	}
	dim := int(hdr[0])
	n := int(hdr[7])
	numLayers := int(hdr[8])
	if dim <= 0 || n < 0 || numLayers < 0 {
		return nil, fmt.Errorf("hnsw: corrupt header (dim=%d n=%d layers=%d)", dim, n, numLayers)
	}
	const maxReasonable = 1 << 32
	if uint64(n)*uint64(dim) > maxReasonable {
		return nil, fmt.Errorf("hnsw: implausible size %d x %d", n, dim)
	}

	cfg := Config{
		M:              int(hdr[1]),
		EfConstruction: int(hdr[2]),
		EfSearch:       int(hdr[3]),
		Seed:           int64(hdr[4]),
	}
	ix, err := New(dim, cfg)
	if err != nil {
		return nil, err
	}
	ix.entry = int(int64(hdr[5]))
	ix.maxLvl = int(int64(hdr[6]))
	// The RNG state is not serialized; further inserts continue from a
	// reseeded stream (documented: level draws after a reload differ).
	ix.rng = rand.New(rand.NewSource(cfg.Seed + int64(n)))

	ix.levels = make([]int, n)
	for i := range ix.levels {
		v, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("hnsw: reading levels: %w", err)
		}
		ix.levels[i] = int(v)
	}
	ix.vectors = make([]float32, n*dim)
	for i := range ix.vectors {
		var bits uint32
		if err := binary.Read(br, le, &bits); err != nil {
			return nil, fmt.Errorf("hnsw: reading vectors: %w", err)
		}
		ix.vectors[i] = math.Float32frombits(bits)
	}
	ix.links = make([]map[int][]int, numLayers)
	for l := range ix.links {
		sz, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("hnsw: reading layer %d: %w", l, err)
		}
		layer := make(map[int][]int, sz)
		for e := uint64(0); e < sz; e++ {
			id, err := readU64()
			if err != nil {
				return nil, fmt.Errorf("hnsw: reading layer %d: %w", l, err)
			}
			deg, err := readU64()
			if err != nil {
				return nil, fmt.Errorf("hnsw: reading layer %d: %w", l, err)
			}
			if int(id) >= n || deg > uint64(n) {
				return nil, fmt.Errorf("hnsw: corrupt adjacency (id=%d deg=%d n=%d)", id, deg, n)
			}
			neigh := make([]int, deg)
			for d := range neigh {
				v, err := readU64()
				if err != nil {
					return nil, fmt.Errorf("hnsw: reading layer %d: %w", l, err)
				}
				if int(v) >= n {
					return nil, fmt.Errorf("hnsw: corrupt neighbor id %d (n=%d)", v, n)
				}
				neigh[d] = int(v)
			}
			layer[int(id)] = neigh
		}
		ix.links[l] = layer
	}
	if ix.entry >= n || (n > 0 && ix.entry < 0) {
		return nil, fmt.Errorf("hnsw: corrupt entry point %d (n=%d)", ix.entry, n)
	}
	return ix, nil
}

package hnsw

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"ejoin/internal/relational"
	"ejoin/internal/vec"
)

// SearchOptions tunes a probe.
type SearchOptions struct {
	// Ef is the beam width for this probe; <=0 uses the index default.
	// Recall grows with Ef at the price of more traversal.
	Ef int
	// Filter restricts the result set to rows whose bit is set, with
	// vector-database pre-filter semantics: excluded nodes are still
	// traversed (and paid for) but never returned.
	Filter *relational.Bitmap
}

// Search returns the (approximately) k most similar indexed vectors to q,
// sorted by descending similarity. Top-k must be specified — the
// index-join flexibility limitation Table I records.
func (ix *Index) Search(q []float32, k int, opts SearchOptions) ([]Result, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(q), ix.dim)
	}
	if k <= 0 {
		return nil, errors.New("hnsw: k must be positive")
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.entry < 0 {
		return nil, nil
	}
	ef := opts.Ef
	if ef <= 0 {
		ef = ix.cfg.EfSearch
	}
	if ef < k {
		ef = k
	}
	nq := make([]float32, ix.dim)
	vec.NormalizeInto(nq, q)

	ep := ix.entry
	for l := ix.maxLvl; l >= 1; l-- {
		ep = ix.greedyClosest(nq, ep, l)
	}
	res := ix.searchLayer(nq, []int{ep}, ef, 0, opts.Filter)
	if len(res) > k {
		res = res[:k]
	}
	return res, nil
}

// RangeSearch returns every indexed vector with similarity >= minSim,
// sorted descending. HNSW has no native range probe; like vector databases,
// it emulates one by widening top-k probes until the beam's worst result
// falls below the threshold (or the beam covers the index). This is why the
// paper finds range conditions hostile to index joins (Figure 17).
func (ix *Index) RangeSearch(q []float32, minSim float32, opts SearchOptions) ([]Result, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(q), ix.dim)
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.entry < 0 {
		return nil, nil
	}
	ef := opts.Ef
	if ef <= 0 {
		ef = ix.cfg.EfSearch
	}
	nq := make([]float32, ix.dim)
	vec.NormalizeInto(nq, q)

	n := ix.Len()
	for {
		ep := ix.entry
		for l := ix.maxLvl; l >= 1; l-- {
			ep = ix.greedyClosest(nq, ep, l)
		}
		res := ix.searchLayer(nq, []int{ep}, ef, 0, opts.Filter)
		// The beam is saturated if its worst member still qualifies; then a
		// wider beam could hold more qualifying vectors — double and retry.
		saturated := len(res) == ef && res[len(res)-1].Sim >= minSim
		if !saturated || ef >= n {
			out := res[:0]
			for _, r := range res {
				if r.Sim >= minSim {
					out = append(out, r)
				}
			}
			return out, nil
		}
		ef *= 2
		if ef > n {
			ef = n
		}
	}
}

// BatchSearch probes the index with every query in parallel, the paper's
// "batching many search queries is equivalent to a join" formulation.
// threads <= 0 uses GOMAXPROCS.
func (ix *Index) BatchSearch(queries [][]float32, k int, threads int, opts SearchOptions) ([][]Result, error) {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	out := make([][]Result, len(queries))
	errs := make([]error, threads)
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(threads)
	for w := 0; w < threads; w++ {
		go func(worker int) {
			defer wg.Done()
			for i := range next {
				res, err := ix.Search(queries[i], k, opts)
				if err != nil {
					errs[worker] = fmt.Errorf("hnsw: query %d: %w", i, err)
					continue
				}
				out[i] = res
			}
		}(w)
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Recall computes recall@k of the index against exact exhaustive top-k over
// the same data for the given queries — the accuracy axis of Table I.
func Recall(ix *Index, data [][]float32, queries [][]float32, k int, opts SearchOptions) (float64, error) {
	if len(queries) == 0 {
		return 0, errors.New("hnsw: no queries")
	}
	var hit, total int
	for _, q := range queries {
		nq := vec.Clone(q)
		vec.Normalize(nq)
		exact := exactTopK(data, nq, k)
		approx, err := ix.Search(q, k, opts)
		if err != nil {
			return 0, err
		}
		got := map[int]bool{}
		for _, r := range approx {
			got[r.ID] = true
		}
		for _, id := range exact {
			if got[id] {
				hit++
			}
			total++
		}
	}
	return float64(hit) / float64(total), nil
}

func exactTopK(data [][]float32, nq []float32, k int) []int {
	type scored struct {
		id  int
		sim float32
	}
	best := make([]scored, 0, k+1)
	for i, v := range data {
		nv := vec.Clone(v)
		vec.Normalize(nv)
		s := vec.Dot(vec.KernelSIMD, nq, nv)
		pos := len(best)
		for pos > 0 && best[pos-1].sim < s {
			pos--
		}
		if pos < k {
			best = append(best, scored{})
			copy(best[pos+1:], best[pos:])
			best[pos] = scored{id: i, sim: s}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	ids := make([]int, len(best))
	for i, b := range best {
		ids[i] = b.id
	}
	return ids
}

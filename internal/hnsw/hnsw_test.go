package hnsw

import (
	"math/rand"
	"testing"

	"ejoin/internal/relational"
	"ejoin/internal/vec"
)

func randomUnitVectors(seed int64, n, dim int) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		vec.Normalize(v)
		out[i] = v
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Config{}); err == nil {
		t.Error("expected error for dim=0")
	}
	if _, err := Build(nil, Config{}); err == nil {
		t.Error("expected error for empty build")
	}
}

func TestConfigPresets(t *testing.T) {
	hi := ConfigHi()
	lo := ConfigLo()
	if hi.M != 64 || hi.EfConstruction != 512 {
		t.Errorf("ConfigHi = %+v", hi)
	}
	if lo.M != 32 || lo.EfConstruction != 256 {
		t.Errorf("ConfigLo = %+v", lo)
	}
	if hi.M <= lo.M {
		t.Error("Hi must be denser than Lo")
	}
}

func TestInsertAndLen(t *testing.T) {
	ix, err := New(4, Config{M: 4, EfConstruction: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 0 || ix.Dim() != 4 {
		t.Fatal("fresh index wrong")
	}
	id, err := ix.Insert([]float32{1, 0, 0, 0})
	if err != nil || id != 0 {
		t.Fatalf("Insert = %d, %v", id, err)
	}
	id2, _ := ix.Insert([]float32{0, 1, 0, 0})
	if id2 != 1 || ix.Len() != 2 {
		t.Fatalf("second insert: id=%d len=%d", id2, ix.Len())
	}
	if _, err := ix.Insert([]float32{1, 2}); err == nil {
		t.Error("expected dim mismatch")
	}
}

func TestSearchEmptyIndex(t *testing.T) {
	ix, _ := New(4, Config{})
	res, err := ix.Search([]float32{1, 0, 0, 0}, 3, SearchOptions{})
	if err != nil || res != nil {
		t.Errorf("empty index search = %v, %v", res, err)
	}
}

func TestSearchValidation(t *testing.T) {
	ix, _ := New(4, Config{})
	if _, err := ix.Search([]float32{1}, 3, SearchOptions{}); err == nil {
		t.Error("expected dim error")
	}
	_, _ = ix.Insert([]float32{1, 0, 0, 0})
	if _, err := ix.Search([]float32{1, 0, 0, 0}, 0, SearchOptions{}); err == nil {
		t.Error("expected k error")
	}
}

func TestSearchExactSelf(t *testing.T) {
	data := randomUnitVectors(3, 200, 16)
	ix, err := Build(data, Config{M: 8, EfConstruction: 64, EfSearch: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Querying with an indexed vector must return it first.
	for _, qi := range []int{0, 17, 99, 199} {
		res, err := ix.Search(data[qi], 1, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].ID != qi {
			t.Errorf("query %d: got %v", qi, res)
		}
		if res[0].Sim < 0.999 {
			t.Errorf("self sim = %v", res[0].Sim)
		}
	}
}

func TestSearchSortedDescending(t *testing.T) {
	data := randomUnitVectors(7, 300, 8)
	ix, _ := Build(data, Config{M: 8, EfConstruction: 64, Seed: 7})
	res, err := ix.Search(data[0], 10, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("len = %d", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Sim > res[i-1].Sim {
			t.Fatalf("not sorted at %d: %v", i, res)
		}
	}
}

// TestRecall validates approximate accuracy: with a generous beam on small
// data, HNSW should achieve high recall versus exhaustive search.
func TestRecall(t *testing.T) {
	data := randomUnitVectors(11, 1000, 16)
	queries := randomUnitVectors(13, 30, 16)
	ix, err := Build(data, Config{M: 16, EfConstruction: 128, EfSearch: 128, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Recall(ix, data, queries, 10, SearchOptions{Ef: 128})
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.85 {
		t.Errorf("recall@10 = %v, want >= 0.85", r)
	}
}

// TestRecallHiVsLo reproduces the paper's Hi/Lo tradeoff direction: the
// higher-quality configuration must not have lower recall.
func TestRecallHiVsLo(t *testing.T) {
	data := randomUnitVectors(17, 800, 16)
	queries := randomUnitVectors(19, 25, 16)
	hi, err := Build(data, Config{M: 32, EfConstruction: 256, EfSearch: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Build(data, Config{M: 4, EfConstruction: 8, EfSearch: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rHi, err := Recall(hi, data, queries, 10, SearchOptions{Ef: 64})
	if err != nil {
		t.Fatal(err)
	}
	rLo, err := Recall(lo, data, queries, 10, SearchOptions{Ef: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rHi < rLo-0.05 {
		t.Errorf("hi recall %v below lo recall %v", rHi, rLo)
	}
}

func TestPreFilter(t *testing.T) {
	data := randomUnitVectors(23, 400, 8)
	ix, _ := Build(data, Config{M: 8, EfConstruction: 64, Seed: 23})
	// Only even IDs pass the relational pre-filter.
	filter := relational.NewBitmap(400)
	for i := 0; i < 400; i += 2 {
		filter.Set(i)
	}
	res, err := ix.Search(data[10], 20, SearchOptions{Ef: 64, Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results with filter")
	}
	for _, r := range res {
		if r.ID%2 != 0 {
			t.Errorf("filtered-out ID %d returned", r.ID)
		}
	}
	// Filter excluding everything yields nothing but does not error.
	none := relational.NewBitmap(400)
	res, err = ix.Search(data[10], 5, SearchOptions{Filter: none})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("expected no results, got %v", res)
	}
}

// TestPreFilterPaysTraversal verifies vector-DB pre-filter semantics:
// filtering does not reduce traversal cost (distance computations), it only
// excludes results — the asymmetry the paper's Figures 15-17 build on.
func TestPreFilterPaysTraversal(t *testing.T) {
	data := randomUnitVectors(29, 500, 8)
	ix, _ := Build(data, Config{M: 8, EfConstruction: 64, Seed: 29})
	q := randomUnitVectors(31, 1, 8)[0]

	base := ix.DistanceCalls()
	if _, err := ix.Search(q, 10, SearchOptions{Ef: 32}); err != nil {
		t.Fatal(err)
	}
	unfiltered := ix.DistanceCalls() - base

	filter := relational.NewBitmap(500)
	for i := 0; i < 50; i++ {
		filter.Set(i)
	}
	base = ix.DistanceCalls()
	if _, err := ix.Search(q, 10, SearchOptions{Ef: 32, Filter: filter}); err != nil {
		t.Fatal(err)
	}
	filtered := ix.DistanceCalls() - base

	if filtered < unfiltered/2 {
		t.Errorf("pre-filtering should not shortcut traversal: %d vs %d calls", filtered, unfiltered)
	}
}

func TestRangeSearch(t *testing.T) {
	data := randomUnitVectors(37, 500, 8)
	ix, _ := Build(data, Config{M: 16, EfConstruction: 128, EfSearch: 32, Seed: 37})
	q := data[42]
	res, err := ix.RangeSearch(q, 0.99, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.Sim < 0.99 {
			t.Errorf("result below threshold: %v", r)
		}
		if r.ID == 42 {
			found = true
		}
	}
	if !found {
		t.Error("range search missed the query vector itself")
	}
	// Low threshold must return many results (ef-doubling works).
	res, err = ix.RangeSearch(q, -1, SearchOptions{Ef: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 400 {
		t.Errorf("range with sim >= -1 returned %d of 500", len(res))
	}
}

func TestRangeSearchValidation(t *testing.T) {
	ix, _ := New(4, Config{})
	if _, err := ix.RangeSearch([]float32{1}, 0.5, SearchOptions{}); err == nil {
		t.Error("expected dim error")
	}
	res, err := ix.RangeSearch([]float32{1, 0, 0, 0}, 0.5, SearchOptions{})
	if err != nil || res != nil {
		t.Errorf("empty index = %v, %v", res, err)
	}
}

func TestBatchSearch(t *testing.T) {
	data := randomUnitVectors(41, 300, 8)
	ix, _ := Build(data, Config{M: 8, EfConstruction: 64, Seed: 41})
	queries := data[:50]
	res, err := ix.BatchSearch(queries, 1, 4, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 50 {
		t.Fatalf("len = %d", len(res))
	}
	for i, rs := range res {
		if len(rs) != 1 || rs[i%1].ID != i {
			t.Errorf("query %d: %v", i, rs)
		}
	}
	// Error propagation: one bad query poisons the batch.
	bad := [][]float32{data[0], {1, 2}}
	if _, err := ix.BatchSearch(bad, 1, 2, SearchOptions{}); err == nil {
		t.Error("expected error for bad query dims")
	}
}

func TestDistanceCallsMonotonic(t *testing.T) {
	data := randomUnitVectors(43, 100, 8)
	ix, _ := Build(data, Config{M: 8, EfConstruction: 32, Seed: 43})
	before := ix.DistanceCalls()
	if before <= 0 {
		t.Error("construction should count distance calls")
	}
	_, _ = ix.Search(data[0], 5, SearchOptions{})
	if ix.DistanceCalls() <= before {
		t.Error("search should count distance calls")
	}
}

// TestIndexAvoidsExhaustiveScan: a probe must touch far fewer vectors than
// the scan would — the whole point of the index (Table I's cost row).
func TestIndexAvoidsExhaustiveScan(t *testing.T) {
	n := 2000
	data := randomUnitVectors(47, n, 16)
	ix, _ := Build(data, Config{M: 8, EfConstruction: 64, EfSearch: 32, Seed: 47})
	before := ix.DistanceCalls()
	if _, err := ix.Search(data[0], 5, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	probeCost := ix.DistanceCalls() - before
	if probeCost >= int64(n) {
		t.Errorf("probe cost %d not sublinear in n=%d", probeCost, n)
	}
}

func TestDeterministicBuild(t *testing.T) {
	data := randomUnitVectors(53, 200, 8)
	a, _ := Build(data, Config{M: 8, EfConstruction: 32, Seed: 9})
	b, _ := Build(data, Config{M: 8, EfConstruction: 32, Seed: 9})
	q := data[7]
	ra, _ := a.Search(q, 10, SearchOptions{})
	rb, _ := b.Search(q, 10, SearchOptions{})
	if len(ra) != len(rb) {
		t.Fatalf("lengths differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].ID != rb[i].ID {
			t.Fatalf("results differ at %d: %v vs %v", i, ra[i], rb[i])
		}
	}
}

func TestUnnormalizedInputHandled(t *testing.T) {
	// Index normalizes internally: scaled copies of the same direction
	// must be identical to the index.
	ix, _ := New(4, Config{M: 4, EfConstruction: 16, Seed: 13})
	_, _ = ix.Insert([]float32{10, 0, 0, 0})
	_, _ = ix.Insert([]float32{0, 0.1, 0, 0})
	res, err := ix.Search([]float32{3, 0, 0, 0}, 1, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 0 || res[0].Sim < 0.999 {
		t.Errorf("res = %v", res)
	}
}

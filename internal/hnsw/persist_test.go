package hnsw

import (
	"bytes"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	data := randomUnitVectors(61, 300, 16)
	orig, err := Build(data, Config{M: 8, EfConstruction: 64, EfSearch: 32, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() || loaded.Dim() != orig.Dim() {
		t.Fatalf("shape: %d/%d vs %d/%d", loaded.Len(), loaded.Dim(), orig.Len(), orig.Dim())
	}
	// Identical search results: the graph structure survived intact.
	for _, qi := range []int{0, 50, 299} {
		a, err := orig.Search(data[qi], 10, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Search(data[qi], 10, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: result lengths %d vs %d", qi, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("query %d: result %d differs: %v vs %v", qi, i, a[i], b[i])
			}
		}
	}
}

func TestLoadedIndexAcceptsInserts(t *testing.T) {
	data := randomUnitVectors(67, 100, 8)
	orig, _ := Build(data, Config{M: 8, EfConstruction: 32, Seed: 67})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	nv := randomUnitVectors(68, 1, 8)[0]
	id, err := loaded.Insert(nv)
	if err != nil {
		t.Fatal(err)
	}
	if id != 100 {
		t.Errorf("id = %d", id)
	}
	res, err := loaded.Search(nv, 1, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 100 {
		t.Errorf("new vector not findable: %v", res)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTANIDX........................"),
		"truncated": append([]byte("EJHNSW01"), 1, 2, 3),
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLoadRejectsCorruptAdjacency(t *testing.T) {
	data := randomUnitVectors(71, 50, 4)
	orig, _ := Build(data, Config{M: 4, EfConstruction: 16, Seed: 71})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip bytes near the end (adjacency region) to an absurd id.
	for i := len(raw) - 8; i < len(raw); i++ {
		raw[i] = 0xff
	}
	if _, err := Load(bytes.NewReader(raw)); err == nil {
		t.Error("expected corrupt-adjacency error")
	}
}

func TestSaveLoadEmptyInsertPath(t *testing.T) {
	ix, _ := New(4, Config{M: 4, EfConstruction: 8, Seed: 3})
	_, _ = ix.Insert([]float32{1, 0, 0, 0})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loaded.Search([]float32{1, 0, 0, 0}, 1, SearchOptions{})
	if err != nil || len(res) != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

// Package hnsw implements the Hierarchical Navigable Small World graph
// index (Malkov & Yashunin, TPAMI 2020) from scratch — the vector-database
// access path the paper compares its scan-based tensor join against
// (Section VI-E, Figures 15-17). The paper uses Milvus's HNSW with two
// configurations: Hi (M=64, efConstruction=512) and Lo (M=32,
// efConstruction=256); ConfigHi and ConfigLo reproduce them.
//
// Characteristics that matter to the join study are preserved:
//
//   - probes avoid exhaustive comparison at the price of approximate
//     results and random access patterns (graph traversal),
//   - the distance function is fixed at construction time (cosine here,
//     via unit-norm vectors and inner product),
//   - top-k must be specified per probe,
//   - relational pre-filtering excludes nodes from the result set on the
//     fly but still pays the traversal cost.
package hnsw

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"ejoin/internal/relational"
	"ejoin/internal/vec"
)

// Config holds HNSW construction and search parameters.
type Config struct {
	// M is the maximum number of bidirectional links per node per layer
	// above 0; layer 0 allows 2*M.
	M int
	// EfConstruction is the candidate-list width during insertion.
	EfConstruction int
	// EfSearch is the default candidate-list width during search; raise
	// for recall, lower for speed. Per-query override via SearchOptions.
	EfSearch int
	// Seed drives level assignment (deterministic builds).
	Seed int64
}

// ConfigHi mirrors the paper's higher-recall index: M=64, efConstruction=512.
func ConfigHi() Config {
	return Config{M: 64, EfConstruction: 512, EfSearch: 128, Seed: 42}
}

// ConfigLo mirrors the paper's lower-recall index: M=32, efConstruction=256.
func ConfigLo() Config {
	return Config{M: 32, EfConstruction: 256, EfSearch: 64, Seed: 42}
}

func (c Config) withDefaults() Config {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 64
	}
	return c
}

// Result is one search hit.
type Result struct {
	// ID is the insertion-order identifier of the vector.
	ID int
	// Sim is the cosine similarity to the query (higher is closer).
	Sim float32
}

// Index is an HNSW graph over unit-norm vectors with cosine similarity.
// Concurrent searches are safe; Insert must not run concurrently with
// anything else.
type Index struct {
	cfg     Config
	dim     int
	mult    float64
	rng     *rand.Rand
	entry   int
	maxLvl  int
	vectors []float32 // row-major normalized copies
	levels  []int
	// links[l][id] is the adjacency list of id at layer l.
	links []map[int][]int

	mu sync.RWMutex

	// distanceCalls counts vector comparisons, the index-side analogue of
	// the scan's FLOP count (used to validate the cost model's Iprobe).
	distanceCalls atomic.Int64
}

// ErrDimMismatch is returned when a vector of wrong dimensionality is used.
var ErrDimMismatch = errors.New("hnsw: dimension mismatch")

// New creates an empty index for dim-dimensional vectors.
func New(dim int, cfg Config) (*Index, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("hnsw: dimension must be positive, got %d", dim)
	}
	cfg = cfg.withDefaults()
	return &Index{
		cfg:    cfg,
		dim:    dim,
		mult:   1 / math.Log(float64(cfg.M)),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		entry:  -1,
		maxLvl: -1,
	}, nil
}

// Build creates an index over the given vectors (inserted in order, so IDs
// are input offsets).
func Build(vectors [][]float32, cfg Config) (*Index, error) {
	if len(vectors) == 0 {
		return nil, errors.New("hnsw: cannot build over empty input")
	}
	idx, err := New(len(vectors[0]), cfg)
	if err != nil {
		return nil, err
	}
	for i, v := range vectors {
		if _, err := idx.Insert(v); err != nil {
			return nil, fmt.Errorf("hnsw: inserting vector %d: %w", i, err)
		}
	}
	return idx, nil
}

// Len returns the number of indexed vectors.
func (ix *Index) Len() int { return len(ix.levels) }

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// DistanceCalls returns the number of vector comparisons performed since
// construction (inserts + searches).
func (ix *Index) DistanceCalls() int64 {
	return ix.distanceCalls.Load()
}

// EfSearch returns the default candidate-list width that searches
// without an explicit Ef override use.
func (ix *Index) EfSearch() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.cfg.EfSearch
}

// SetEfSearch changes the default search beam (floored at 1) and returns
// the applied value. Safe against concurrent searches — this is the knob
// the recall-SLO tuner adjusts.
func (ix *Index) SetEfSearch(ef int) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ef < 1 {
		ef = 1
	}
	ix.cfg.EfSearch = ef
	return ef
}

// Knob identifies efSearch as the index's tunable recall/cost knob.
func (ix *Index) Knob() (string, int) { return "ef", ix.EfSearch() }

// SetKnob applies a new efSearch (vindex.TunableIndex).
func (ix *Index) SetKnob(v int) int { return ix.SetEfSearch(v) }

func (ix *Index) vector(id int) []float32 {
	return ix.vectors[id*ix.dim : (id+1)*ix.dim : (id+1)*ix.dim]
}

// sim computes cosine similarity between the query and node id
// (both unit-norm, so inner product).
func (ix *Index) sim(q []float32, id int) float32 {
	ix.distanceCalls.Add(1)
	return vec.Dot(vec.KernelSIMD, q, ix.vector(id))
}

// randomLevel draws the node level from the standard HNSW geometric
// distribution.
func (ix *Index) randomLevel() int {
	u := ix.rng.Float64()
	for u == 0 {
		u = ix.rng.Float64()
	}
	return int(-math.Log(u) * ix.mult)
}

// Insert adds v (copied and normalized) and returns its ID.
func (ix *Index) Insert(v []float32) (int, error) {
	if len(v) != ix.dim {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(v), ix.dim)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()

	id := len(ix.levels)
	nv := make([]float32, ix.dim)
	vec.NormalizeInto(nv, v)
	ix.vectors = append(ix.vectors, nv...)

	level := ix.randomLevel()
	ix.levels = append(ix.levels, level)
	for len(ix.links) <= level {
		ix.links = append(ix.links, make(map[int][]int))
	}

	if ix.entry < 0 {
		ix.entry = id
		ix.maxLvl = level
		return id, nil
	}

	q := nv
	ep := ix.entry
	// Greedy descent on layers above the node's level.
	for l := ix.maxLvl; l > level; l-- {
		ep = ix.greedyClosest(q, ep, l)
	}
	// Insert with efConstruction-wide beam on the remaining layers.
	for l := minInt(level, ix.maxLvl); l >= 0; l-- {
		cands := ix.searchLayer(q, []int{ep}, ix.cfg.EfConstruction, l, nil)
		maxConn := ix.cfg.M
		if l == 0 {
			maxConn = 2 * ix.cfg.M
		}
		selected := ix.selectNeighbors(q, cands, ix.cfg.M)
		ix.links[l][id] = idsOf(selected)
		for _, n := range selected {
			ix.links[l][n.ID] = append(ix.links[l][n.ID], id)
			if len(ix.links[l][n.ID]) > maxConn {
				ix.shrink(n.ID, l, maxConn)
			}
		}
		if len(selected) > 0 {
			ep = selected[0].ID
		}
	}
	if level > ix.maxLvl {
		ix.maxLvl = level
		ix.entry = id
	}
	return id, nil
}

// greedyClosest walks layer l greedily toward q from ep.
func (ix *Index) greedyClosest(q []float32, ep, l int) int {
	best := ep
	bestSim := ix.sim(q, ep)
	for {
		improved := false
		for _, n := range ix.links[l][best] {
			if s := ix.sim(q, n); s > bestSim {
				best, bestSim = n, s
				improved = true
			}
		}
		if !improved {
			return best
		}
	}
}

// searchLayer is the standard HNSW beam search at one layer: maintains a
// candidate max-heap (closest first) and a result min-heap of width ef.
// filter, if non-nil, excludes nodes from the *results* but not from
// traversal (vector-database pre-filter semantics).
func (ix *Index) searchLayer(q []float32, eps []int, ef, l int, filter *relational.Bitmap) []Result {
	visited := map[int]bool{}
	cand := &simMaxHeap{}
	res := &simMinHeap{}
	heap.Init(cand)
	heap.Init(res)

	push := func(id int) {
		if visited[id] {
			return
		}
		visited[id] = true
		s := ix.sim(q, id)
		// Traversal uses the node regardless of the filter...
		heap.Push(cand, Result{ID: id, Sim: s})
		// ...but only qualifying nodes enter the result beam.
		if filter == nil || filter.Get(id) {
			heap.Push(res, Result{ID: id, Sim: s})
			if res.Len() > ef {
				heap.Pop(res)
			}
		}
	}
	for _, ep := range eps {
		push(ep)
	}
	for cand.Len() > 0 {
		c := heap.Pop(cand).(Result)
		if res.Len() >= ef {
			worst := (*res)[0].Sim
			if c.Sim < worst {
				break
			}
		}
		for _, n := range ix.links[l][c.ID] {
			push(n)
		}
	}
	out := make([]Result, res.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(res).(Result)
	}
	return out
}

// selectNeighbors applies the HNSW neighbor-selection heuristic: prefer
// candidates that are closer to q than to any already-selected neighbor,
// which keeps the graph navigable instead of clustering links.
func (ix *Index) selectNeighbors(q []float32, cands []Result, m int) []Result {
	if len(cands) <= m {
		return cands
	}
	selected := make([]Result, 0, m)
	for _, c := range cands { // cands sorted descending by sim
		if len(selected) == m {
			break
		}
		ok := true
		for _, s := range selected {
			if ix.simBetween(c.ID, s.ID) > c.Sim {
				ok = false
				break
			}
		}
		if ok {
			selected = append(selected, c)
		}
	}
	// Backfill with remaining closest if the heuristic was too strict.
	if len(selected) < m {
		chosen := map[int]bool{}
		for _, s := range selected {
			chosen[s.ID] = true
		}
		for _, c := range cands {
			if len(selected) == m {
				break
			}
			if !chosen[c.ID] {
				selected = append(selected, c)
			}
		}
	}
	return selected
}

func (ix *Index) simBetween(a, b int) float32 {
	ix.distanceCalls.Add(1)
	return vec.Dot(vec.KernelSIMD, ix.vector(a), ix.vector(b))
}

// shrink reapplies neighbor selection to node id at layer l so its
// adjacency stays within maxConn.
func (ix *Index) shrink(id, l, maxConn int) {
	neigh := ix.links[l][id]
	cands := make([]Result, 0, len(neigh))
	for _, n := range neigh {
		cands = append(cands, Result{ID: n, Sim: ix.simBetween(id, n)})
	}
	sortResultsDesc(cands)
	ix.links[l][id] = idsOf(ix.selectNeighbors(ix.vector(id), cands, maxConn))
}

func idsOf(rs []Result) []int {
	ids := make([]int, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}

func sortResultsDesc(rs []Result) {
	// Insertion sort: candidate lists are short (≤ efConstruction).
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Sim > rs[j-1].Sim; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// simMaxHeap pops the highest-similarity element first (candidates).
type simMaxHeap []Result

func (h simMaxHeap) Len() int           { return len(h) }
func (h simMaxHeap) Less(i, j int) bool { return h[i].Sim > h[j].Sim }
func (h simMaxHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *simMaxHeap) Push(x any)        { *h = append(*h, x.(Result)) }
func (h *simMaxHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// simMinHeap pops the lowest-similarity element first (result beam).
type simMinHeap []Result

func (h simMinHeap) Len() int           { return len(h) }
func (h simMinHeap) Less(i, j int) bool { return h[i].Sim < h[j].Sim }
func (h simMinHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *simMinHeap) Push(x any)        { *h = append(*h, x.(Result)) }
func (h *simMinHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

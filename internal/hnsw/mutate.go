package hnsw

import "ejoin/internal/mat"

// Add implements vindex.MutableIndex: each row of vecs is inserted in
// order through the regular insert path, so ids continue sequentially
// from Len(). Insert takes the index's write lock per vector and searches
// take the read lock, so probes interleave with an in-progress batch
// instead of blocking behind it; tombstoned rows are excluded at search
// time by the caller's filter, never removed from the graph.
func (ix *Index) Add(vecs *mat.Matrix) error {
	if vecs == nil {
		return nil
	}
	for i := 0; i < vecs.Rows(); i++ {
		if _, err := ix.Insert(vecs.Row(i)); err != nil {
			return err
		}
	}
	return nil
}

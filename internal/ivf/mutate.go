package ivf

// Live mutation support: posting-list append and deleted-fraction
// re-clustering. An inverted file absorbs inserts cheaply — assign the new
// vector to its nearest coarse centroid and append to that partition's
// posting list — but deletes only tombstone (the search-time filter skips
// them), so centroids drift away from the live distribution as rows churn.
// Recluster recomputes the coarse quantizer from the live vectors only and
// reassigns every indexed vector, restoring recall without rebuilding the
// index or re-ingesting the table.

import (
	"errors"
	"fmt"

	"ejoin/internal/mat"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
)

// nearestCentroid returns the partition whose centroid has the highest
// inner product with the unit-norm vector v.
func nearestCentroid(centroids *mat.Matrix, v []float32) int {
	best, bestSim := 0, float32(-2)
	for c := 0; c < centroids.Rows(); c++ {
		if s := vec.Dot(vec.KernelSIMD, v, centroids.Row(c)); s > bestSim {
			best, bestSim = c, s
		}
	}
	return best
}

// Add implements vindex.MutableIndex: vecs' rows (copied and normalized)
// are assigned to their nearest coarse centroid and appended to that
// partition's posting list, with ids continuing sequentially from Len().
// Centroids are not moved — Recluster restores them when churn warrants.
// Safe to call concurrently with Search.
func (ix *Index) Add(vecs *mat.Matrix) error {
	if vecs == nil || vecs.Rows() == 0 {
		return nil
	}
	if vecs.Cols() != ix.dim {
		return fmt.Errorf("ivf: add dim %d, index dim %d", vecs.Cols(), ix.dim)
	}
	nv := vecs.Clone()
	nv.NormalizeRows()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for i := 0; i < nv.Rows(); i++ {
		row := nv.Row(i)
		id := ix.vectors.Rows()
		ix.vectors.Data = append(ix.vectors.Data, row...)
		ix.vectors.RowsN++
		c := nearestCentroid(ix.centroids, row)
		ix.lists[c] = append(ix.lists[c], id)
	}
	return nil
}

// Recluster recomputes the coarse quantizer over the live vectors only
// (rows set in live) and reassigns every indexed vector to the new
// partitions. Tombstoned vectors stay indexed — physical ids must remain
// dense — but no longer pull centroids toward regions the live data has
// left. The k-means pass runs against an immutable snapshot outside the
// lock; only the final reassignment blocks searches. Vectors appended
// concurrently with the recompute are reassigned under the new centroids
// in that final section, so none are lost.
func (ix *Index) Recluster(live *relational.Bitmap) error {
	ix.mu.RLock()
	n0 := ix.vectors.Rows()
	// Rows 0..n0 are immutable (appends only grow), so the slice header is
	// a stable snapshot even while concurrent Adds proceed.
	snap := ix.vectors.Slice(0, n0)
	cfg := ix.cfg
	ix.mu.RUnlock()

	liveSel := make([]int, 0, n0)
	for i := 0; i < n0; i++ {
		if live == nil || live.Get(i) {
			liveSel = append(liveSel, i)
		}
	}
	if len(liveSel) == 0 {
		return errors.New("ivf: recluster with no live vectors")
	}
	lv := mat.New(len(liveSel), snap.Cols())
	for i, r := range liveSel {
		copy(lv.Row(i), snap.Row(r))
	}
	k := cfg.NLists
	if k > len(liveSel) {
		k = len(liveSel)
	}
	centroids, _ := kmeans(lv, k, cfg.KMeansIters, cfg.Seed)

	ix.mu.Lock()
	defer ix.mu.Unlock()
	n := ix.vectors.Rows() // may exceed n0: rows appended during k-means
	lists := make([][]int, k)
	for i := 0; i < n; i++ {
		c := nearestCentroid(centroids, ix.vectors.Row(i))
		lists[c] = append(lists[c], i)
	}
	ix.centroids = centroids
	ix.lists = lists
	ix.cfg.NLists = k
	if ix.cfg.NProbe > k {
		ix.cfg.NProbe = k
	}
	return nil
}

// Add implements vindex.MutableIndex for the compressed index: vecs' rows
// are normalized, assigned to their nearest coarse centroid, residualized
// against it, and encoded with the existing product-quantizer codebook
// (codebooks are not retrained on insert — like centroids, they drift
// with churn and are restored by rebuilding). An attached rerank matrix
// no longer covers the new ids and is detached; attach a grown one after
// the batch to restore exact reranking.
func (ix *PQIndex) Add(vecs *mat.Matrix) error {
	if vecs == nil || vecs.Rows() == 0 {
		return nil
	}
	if vecs.Cols() != ix.dim {
		return fmt.Errorf("ivf: add dim %d, index dim %d", vecs.Cols(), ix.dim)
	}
	nv := vecs.Clone()
	nv.NormalizeRows()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id := len(ix.codes) / ix.book.M()
	for i := 0; i < nv.Rows(); i++ {
		row := nv.Row(i)
		c := nearestCentroid(ix.centroids, row)
		cent := ix.centroids.Row(c)
		res := make([]float32, len(row))
		for j := range row {
			res[j] = row[j] - cent[j]
		}
		code := make([]byte, ix.book.M())
		if err := ix.book.Encode(res, code); err != nil {
			return err
		}
		ix.codes = append(ix.codes, code...)
		ix.lists[c] = append(ix.lists[c], id)
		id++
	}
	ix.rerank = nil
	return nil
}

package ivf

import (
	"testing"

	"ejoin/internal/mat"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
	"ejoin/internal/workload"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(workload.Vectors(1, 0, 8), Config{}); err == nil {
		t.Error("expected empty-input error")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults(100)
	if cfg.NLists != 10 { // isqrt(100)
		t.Errorf("NLists = %d", cfg.NLists)
	}
	if cfg.KMeansIters != 10 || cfg.NProbe != 8 {
		t.Errorf("defaults: %+v", cfg)
	}
	// NLists capped at n; NProbe capped at NLists.
	cfg = Config{NLists: 100, NProbe: 50}.withDefaults(10)
	if cfg.NLists != 10 || cfg.NProbe != 10 {
		t.Errorf("caps: %+v", cfg)
	}
	if isqrt(0) != 0 || isqrt(1) != 1 || isqrt(17) != 5 {
		t.Error("isqrt broken")
	}
}

func TestBuildPartitionsCoverAll(t *testing.T) {
	data := workload.Vectors(3, 500, 16)
	ix, err := Build(data, Config{NLists: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 500 || ix.Dim() != 16 || ix.NLists() != 16 {
		t.Fatalf("shape: len=%d dim=%d lists=%d", ix.Len(), ix.Dim(), ix.NLists())
	}
	seen := map[int]bool{}
	for _, list := range ix.lists {
		for _, id := range list {
			if seen[id] {
				t.Fatalf("vector %d in two lists", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != 500 {
		t.Fatalf("%d of 500 vectors assigned", len(seen))
	}
}

func TestSearchSelf(t *testing.T) {
	data := workload.Vectors(5, 400, 16)
	ix, err := Build(data, Config{NLists: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, qi := range []int{0, 99, 399} {
		res, err := ix.Search(data.Row(qi), 1, SearchOptions{NProbe: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 1 && res[0].ID == qi {
			hits++
		}
	}
	// Self-search can miss only if the query's own partition is not probed;
	// with the query vector indexed, its partition is the closest centroid
	// by construction, so all must hit.
	if hits != 3 {
		t.Errorf("self-search hits = %d of 3", hits)
	}
}

func TestSearchValidation(t *testing.T) {
	data := workload.Vectors(7, 50, 8)
	ix, _ := Build(data, Config{Seed: 7})
	if _, err := ix.Search(make([]float32, 4), 1, SearchOptions{}); err == nil {
		t.Error("expected dim error")
	}
	if _, err := ix.Search(data.Row(0), 0, SearchOptions{}); err == nil {
		t.Error("expected k error")
	}
}

func TestSearchSorted(t *testing.T) {
	data := workload.Vectors(9, 300, 8)
	ix, _ := Build(data, Config{NLists: 8, Seed: 9})
	res, err := ix.Search(data.Row(5), 10, SearchOptions{NProbe: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("len = %d", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Sim > res[i-1].Sim {
			t.Fatalf("not sorted: %v", res)
		}
	}
}

// TestRecallGrowsWithNProbe: the IVF recall dial.
func TestRecallGrowsWithNProbe(t *testing.T) {
	data := workload.Vectors(11, 2000, 16)
	queries := workload.Vectors(13, 30, 16)
	ix, err := Build(data, Config{NLists: 32, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	recallAt := func(nprobe int) float64 {
		hits, total := 0, 0
		for qi := 0; qi < queries.Rows(); qi++ {
			q := queries.Row(qi)
			exact := exactTop(data, q, 10)
			res, err := ix.Search(q, 10, SearchOptions{NProbe: nprobe})
			if err != nil {
				t.Fatal(err)
			}
			got := map[int]bool{}
			for _, r := range res {
				got[r.ID] = true
			}
			for _, id := range exact {
				if got[id] {
					hits++
				}
				total++
			}
		}
		return float64(hits) / float64(total)
	}
	r1 := recallAt(1)
	r8 := recallAt(8)
	rAll := recallAt(32)
	if r8 < r1 {
		t.Errorf("recall fell with nprobe: %v -> %v", r1, r8)
	}
	if rAll < 0.999 {
		t.Errorf("nprobe=nlists should be exact: %v", rAll)
	}
}

func exactTop(data *mat.Matrix, q []float32, k int) []int {
	nq := vec.Clone(q)
	vec.Normalize(nq)
	type scored struct {
		id  int
		sim float32
	}
	best := make([]scored, 0, k+1)
	for i := 0; i < data.Rows(); i++ {
		s := vec.Dot(vec.KernelSIMD, nq, data.Row(i))
		pos := len(best)
		for pos > 0 && best[pos-1].sim < s {
			pos--
		}
		if pos < k {
			best = append(best, scored{})
			copy(best[pos+1:], best[pos:])
			best[pos] = scored{id: i, sim: s}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	ids := make([]int, len(best))
	for i, b := range best {
		ids[i] = b.id
	}
	return ids
}

func TestFilterReducesCost(t *testing.T) {
	data := workload.Vectors(17, 1000, 8)
	ix, _ := Build(data, Config{NLists: 8, Seed: 17})
	q := workload.Vectors(18, 1, 8).Row(0)

	before := ix.DistanceCalls()
	if _, err := ix.Search(q, 5, SearchOptions{NProbe: 8}); err != nil {
		t.Fatal(err)
	}
	unfiltered := ix.DistanceCalls() - before

	filter := relational.NewBitmap(1000)
	for i := 0; i < 100; i++ {
		filter.Set(i)
	}
	before = ix.DistanceCalls()
	res, err := ix.Search(q, 5, SearchOptions{NProbe: 8, Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	filtered := ix.DistanceCalls() - before
	// IVF checks the bitmap before the distance computation, so a 10%
	// filter cuts probe cost (contrast with HNSW's traversal-bound cost).
	if filtered >= unfiltered/2 {
		t.Errorf("filter did not reduce cost: %d vs %d", filtered, unfiltered)
	}
	for _, r := range res {
		if r.ID >= 100 {
			t.Errorf("filtered-out ID returned: %v", r)
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	data := workload.Vectors(19, 300, 8)
	a, _ := Build(data, Config{NLists: 8, Seed: 19})
	b, _ := Build(data, Config{NLists: 8, Seed: 19})
	q := data.Row(3)
	ra, _ := a.Search(q, 5, SearchOptions{NProbe: 4})
	rb, _ := b.Search(q, 5, SearchOptions{NProbe: 4})
	if len(ra) != len(rb) {
		t.Fatal("lengths differ")
	}
	for i := range ra {
		if ra[i].ID != rb[i].ID {
			t.Fatalf("results differ at %d", i)
		}
	}
}

package ivf

import (
	"testing"

	"ejoin/internal/mat"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
	"ejoin/internal/workload"
)

func TestAddThenSearchFindsNew(t *testing.T) {
	data := workload.Vectors(31, 200, 16)
	ix, err := Build(data, Config{NLists: 16, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	added := workload.Vectors(32, 50, 16)
	if err := ix.Add(added); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 250 {
		t.Fatalf("len after add = %d, want 250", ix.Len())
	}
	// Every appended vector is its own nearest neighbor when all lists are
	// probed.
	for _, i := range []int{0, 25, 49} {
		res, err := ix.Search(added.Row(i), 1, SearchOptions{NProbe: 16})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].ID != 200+i {
			t.Fatalf("added vector %d: search returned %v", i, res)
		}
	}
	if err := ix.Add(workload.Vectors(33, 1, 8)); err == nil {
		t.Fatal("dim-mismatched add accepted")
	}
}

// exactTopLive is brute-force top-k over the live subset only.
func exactTopLive(data *mat.Matrix, live *relational.Bitmap, q []float32, k int) map[int]bool {
	nq := vec.Clone(q)
	vec.Normalize(nq)
	type scored struct {
		id  int
		sim float32
	}
	var best []scored
	for i := 0; i < data.Rows(); i++ {
		if !live.Get(i) {
			continue
		}
		s := vec.Dot(vec.KernelSIMD, nq, data.Row(i))
		pos := len(best)
		for pos > 0 && best[pos-1].sim < s {
			pos--
		}
		if pos < k {
			best = append(best, scored{})
			copy(best[pos+1:], best[pos:])
			best[pos] = scored{id: i, sim: s}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	ids := make(map[int]bool, len(best))
	for _, b := range best {
		ids[b.id] = true
	}
	return ids
}

// TestReclusterRestoresRecall models the churn the mutation layer
// generates: the index is built over one distribution (a tight off-center
// cluster), that data is then wholly tombstoned, and a different
// distribution is appended. The stale centroids — all trained on the dead
// cluster — partition the live data badly. Recluster over the live rows
// must restore recall@10 to >= 0.95 without a rebuild.
func TestReclusterRestoresRecall(t *testing.T) {
	const dim, nOld, nNew = 16, 600, 600
	old := workload.Vectors(21, nOld, dim)
	for i := 0; i < nOld; i++ {
		old.Row(i)[0] += 4 // concentrate near the +e0 pole
	}
	ix, err := Build(old, Config{NLists: 32, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	fresh := workload.Vectors(22, nNew, dim)
	if err := ix.Add(fresh); err != nil {
		t.Fatal(err)
	}

	// All original rows dead, all appended rows live.
	live := relational.NewBitmap(nOld + nNew)
	for i := 0; i < nNew; i++ {
		live.Set(nOld + i)
	}
	all := mat.New(nOld+nNew, dim)
	copy(all.Data[:nOld*dim], old.Data)
	copy(all.Data[nOld*dim:], fresh.Data)

	queries := workload.Vectors(23, 30, dim)
	recallAt := func(nprobe int) float64 {
		hits, total := 0, 0
		for qi := 0; qi < queries.Rows(); qi++ {
			q := queries.Row(qi)
			exact := exactTopLive(all, live, q, 10)
			res, err := ix.Search(q, 10, SearchOptions{NProbe: nprobe, Filter: live})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res {
				if exact[r.ID] {
					hits++
				}
			}
			total += len(exact)
		}
		return float64(hits) / float64(total)
	}

	// nprobe=16 of 32: the setting where a from-scratch rebuild over the
	// live rows scores ~0.98 — re-clustering must get within reach of that
	// (>= 0.95), not merely improve on the drifted state.
	before := recallAt(16)
	if err := ix.Recluster(live); err != nil {
		t.Fatal(err)
	}
	after := recallAt(16)
	t.Logf("recall@10 nprobe=16: before recluster %.3f, after %.3f", before, after)
	if after < 0.95 {
		t.Errorf("recall after recluster %.3f, want >= 0.95", after)
	}
	if after < before {
		t.Errorf("recluster reduced recall: %.3f -> %.3f", before, after)
	}

	// Reassignment must cover every physical id exactly once (dead rows
	// stay indexed — ids are dense).
	seen := map[int]bool{}
	for _, list := range ix.lists {
		for _, id := range list {
			if seen[id] {
				t.Fatalf("vector %d in two lists after recluster", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != nOld+nNew {
		t.Fatalf("%d of %d vectors assigned after recluster", len(seen), nOld+nNew)
	}
}

package ivf

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ejoin/internal/mat"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
	"ejoin/internal/vindex"
)

// PQIndex is the PQ-compressed variant of the IVF index: the same k-means
// coarse partitioning, but posting lists hold M-byte product-quantization
// codes instead of float32 vectors. Codes encode the residual of each
// vector against its list's coarse centroid (the FAISS IVFPQ design):
// residuals are small and locally clustered, so the shared codebook
// captures them far more precisely than raw vectors. For inner-product
// similarity the decomposition q·x = q·centroid + q·residual means one
// shared ADC lookup table per query still suffices — probes score
// candidates with M table lookups plus the list's already-computed
// centroid similarity, no decode — then an exact rerank pass over the
// top-C candidates against caller-attached float32 vectors restores
// recall. Resident index storage is the codes plus the codebook and
// coarse centroids — 4-16× below IVF-Flat's normalized vector copy —
// while the rerank pass reads the base table's vectors, which the engine
// keeps resident anyway.
type PQIndex struct {
	cfg       Config
	dim       int
	centroids *mat.Matrix
	lists     [][]int
	codes     []byte // Len() × book.M(), indexed by vector id
	book      *quant.Codebook

	mu sync.RWMutex
	// rerank, when attached, holds the exact unit-norm vectors the rerank
	// pass reads. It aliases caller storage and is never serialized:
	// re-attach after Load.
	rerank *mat.Matrix
	// rerankC is the default exact-rerank candidate pool for searches
	// without an explicit RerankC (0 means DefaultRerankFactor·k). The
	// recall-SLO tuner adjusts it via SetRerankC.
	rerankC int

	distanceCalls atomic.Int64
	rerankNanos   atomic.Int64
}

// DefaultRerankFactor sets the rerank candidate pool to factor·k when
// PQSearchOptions.RerankC is unset.
const DefaultRerankFactor = 4

// BuildPQ constructs a PQ-compressed index over the rows of data: coarse
// k-means into cfg partitions, then a product quantizer trained on the
// per-vector residuals against their assigned coarse centroids, and one
// M-byte residual code per row. The float32 vectors are not retained.
func BuildPQ(data *mat.Matrix, cfg Config, pqcfg quant.PQConfig) (*PQIndex, error) {
	n := data.Rows()
	if n == 0 {
		return nil, errors.New("ivf: cannot build over empty input")
	}
	cfg = cfg.withDefaults(n)
	vecs := data.Clone()
	vecs.NormalizeRows()

	centroids, assign := kmeans(vecs, cfg.NLists, cfg.KMeansIters, cfg.Seed)
	lists := make([][]int, cfg.NLists)
	for id, c := range assign {
		lists[c] = append(lists[c], id)
	}
	// Residualize in place: vecs row i becomes x_i - centroid(assign_i).
	for id, c := range assign {
		row := vecs.Row(id)
		cent := centroids.Row(c)
		for j := range row {
			row[j] -= cent[j]
		}
	}
	book, err := quant.TrainPQ(vecs, pqcfg)
	if err != nil {
		return nil, err
	}
	codes, err := book.EncodeAll(vecs)
	if err != nil {
		return nil, err
	}
	return &PQIndex{
		cfg:       cfg,
		dim:       data.Cols(),
		centroids: centroids,
		lists:     lists,
		codes:     codes,
		book:      book,
	}, nil
}

// Len returns the number of indexed vectors.
func (ix *PQIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.codes) / ix.book.M()
}

// Dim returns the vector dimensionality.
func (ix *PQIndex) Dim() int { return ix.dim }

// NLists returns the number of partitions.
func (ix *PQIndex) NLists() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.lists)
}

// Codebook exposes the trained product quantizer.
func (ix *PQIndex) Codebook() *quant.Codebook { return ix.book }

// DistanceCalls returns the comparisons performed by searches so far
// (coarse centroid dots + ADC scores + rerank dots).
func (ix *PQIndex) DistanceCalls() int64 { return ix.distanceCalls.Load() }

// RerankNanos returns cumulative wall time spent in the exact rerank
// pass. Join operators read the before/after delta to attribute rerank
// time to one probe batch (the same pattern as DistanceCalls).
func (ix *PQIndex) RerankNanos() int64 { return ix.rerankNanos.Load() }

// SizeBytes is the resident index storage: codes, codebook, and coarse
// centroids. The attached rerank vectors are excluded — they alias the
// base table's storage, not the index's.
func (ix *PQIndex) SizeBytes() int64 {
	return int64(len(ix.codes)) + ix.book.SizeBytes() + ix.centroids.SizeBytes()
}

// HasRerank reports whether exact rerank vectors are attached.
func (ix *PQIndex) HasRerank() bool { return ix.rerank != nil }

// RerankC returns the default exact-rerank candidate pool; 0 means
// searches fall back to DefaultRerankFactor·k.
func (ix *PQIndex) RerankC() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.rerankC
}

// SetRerankC changes the default rerank pool (floored at 1; the search
// path still widens it to at least k) and returns the applied value.
// Safe against concurrent searches — this is the knob the recall-SLO
// tuner adjusts.
func (ix *PQIndex) SetRerankC(c int) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if c < 1 {
		c = 1
	}
	ix.rerankC = c
	return c
}

// Knob identifies the rerank pool as the index's tunable knob. An unset
// pool reports the DefaultRerankFactor·10 starting point so the tuner
// has a concrete value to step from.
func (ix *PQIndex) Knob() (string, int) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	c := ix.rerankC
	if c <= 0 {
		c = DefaultRerankFactor * 10
	}
	return "rerank_c", c
}

// SetKnob applies a new rerank pool (vindex.TunableIndex).
func (ix *PQIndex) SetKnob(v int) int { return ix.SetRerankC(v) }

// AttachRerank attaches the exact vectors the rerank pass scores against:
// one unit-norm row per indexed vector, in id order (the same data the
// index was built over, normalized). The matrix is referenced, not
// copied, and is not part of snapshots — re-attach after Load.
func (ix *PQIndex) AttachRerank(m *mat.Matrix) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if n := len(ix.codes) / ix.book.M(); m.Rows() != n {
		return fmt.Errorf("ivf: rerank matrix has %d rows, index has %d vectors", m.Rows(), n)
	}
	if m.Cols() != ix.dim {
		return fmt.Errorf("ivf: rerank matrix dim %d, index dim %d", m.Cols(), ix.dim)
	}
	if !m.RowsNormalized(1e-3) {
		return errors.New("ivf: rerank matrix rows must be unit-norm (NormalizeRows first)")
	}
	ix.rerank = m
	return nil
}

// PQSearchOptions tunes a compressed probe.
type PQSearchOptions struct {
	// NProbe overrides the number of partitions scanned (index default
	// if <=0).
	NProbe int
	// Filter restricts results to set rows; like IVF-Flat, the bitmap is
	// checked before scoring, so filtering reduces probe cost.
	Filter *relational.Bitmap
	// RerankC is the ADC candidate pool the exact rerank pass rescores
	// (<=0 means DefaultRerankFactor·k). Ignored when no rerank vectors
	// are attached.
	RerankC int
}

// Search returns the (approximately) k most similar indexed vectors,
// sorted descending. With rerank vectors attached, similarities are exact
// dot products of the top-C ADC candidates; otherwise they are ADC
// estimates.
func (ix *PQIndex) Search(q []float32, k int, opts PQSearchOptions) ([]Result, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("ivf: query dim %d, index dim %d", len(q), ix.dim)
	}
	if k <= 0 {
		return nil, errors.New("ivf: k must be positive")
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	nprobe := opts.NProbe
	if nprobe <= 0 {
		nprobe = ix.cfg.NProbe
	}
	if nprobe > len(ix.lists) {
		nprobe = len(ix.lists)
	}
	pool := k
	if ix.rerank != nil {
		pool = opts.RerankC
		if pool <= 0 {
			pool = ix.rerankC // under the lock: the tuner may adjust it
		}
		if pool <= 0 {
			pool = DefaultRerankFactor * k
		}
		if pool < k {
			pool = k
		}
	}
	nq := vec.Clone(q)
	vec.Normalize(nq)

	// Rank coarse centroids; scan the nprobe best lists by ADC score.
	cands := make([]scoredList, len(ix.lists))
	for c := range ix.lists {
		ix.distanceCalls.Add(1)
		cands[c] = scoredList{c: c, sim: vec.Dot(vec.KernelSIMD, nq, ix.centroids.Row(c))}
	}
	topNListsDesc(cands, nprobe)

	tab := make([]float32, ix.book.ADCTableSize())
	if err := ix.book.ADCTable(nq, tab); err != nil {
		return nil, err
	}
	m, kk := ix.book.M(), ix.book.K()
	res := &minHeap{}
	heap.Init(res)
	for _, sc := range cands[:nprobe] {
		for _, id := range ix.lists[sc.c] {
			if opts.Filter != nil && !opts.Filter.Get(id) {
				continue
			}
			ix.distanceCalls.Add(1)
			// q·x = q·centroid + q·residual: the list's centroid similarity
			// plus the ADC estimate of the residual term.
			s := sc.sim + quant.ADCScore(tab, kk, ix.codes[id*m:(id+1)*m])
			if res.Len() < pool {
				heap.Push(res, Result{ID: id, Sim: s})
			} else if s > (*res)[0].Sim {
				(*res)[0] = Result{ID: id, Sim: s}
				heap.Fix(res, 0)
			}
		}
	}
	out := make([]Result, res.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(res).(Result)
	}
	if ix.rerank == nil {
		if len(out) > k {
			out = out[:k]
		}
		return out, nil
	}
	// Exact rerank: rescore the ADC candidate pool against the attached
	// float32 vectors, then keep the true top-k.
	rerankStart := time.Now()
	for i := range out {
		ix.distanceCalls.Add(1)
		out[i].Sim = vec.Dot(vec.KernelSIMD, nq, ix.rerank.Row(out[i].ID))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].ID < out[j].ID
	})
	ix.rerankNanos.Add(time.Since(rerankStart).Nanoseconds())
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// TopK implements vindex.Index: beam maps to nprobe. Rerank (when
// attached) uses the default candidate pool.
func (ix *PQIndex) TopK(q []float32, k, beam int, filter *relational.Bitmap) ([]vindex.Hit, error) {
	res, err := ix.Search(q, k, PQSearchOptions{NProbe: beam, Filter: filter})
	if err != nil {
		return nil, err
	}
	hits := make([]vindex.Hit, len(res))
	for i, r := range res {
		hits[i] = vindex.Hit{ID: r.ID, Sim: r.Sim}
	}
	return hits, nil
}

var _ vindex.Index = (*PQIndex)(nil)
var _ vindex.TunableIndex = (*PQIndex)(nil)

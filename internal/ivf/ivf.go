// Package ivf implements an IVF-Flat (inverted file) vector index: k-means
// coarse quantization into nlist partitions, exhaustive scan of the nprobe
// closest partitions at query time. It is the second classic vector-
// database access path besides HNSW (the paper cites FAISS, Johnson et
// al., whose workhorse this is), with a different trade-off: cheap
// construction and predictable sequential scans per partition, versus
// HNSW's expensive build and logarithmic random-access probes.
//
// Pre-filter semantics differ from graph indexes and are documented on
// SearchOptions: list scans skip filtered-out vectors before the distance
// computation, so relational filtering does reduce IVF probe cost —
// another reason access path selection is selectivity-driven.
package ivf

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"ejoin/internal/mat"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
)

// Config holds construction parameters.
type Config struct {
	// NLists is the number of k-means partitions; <=0 picks ~sqrt(n).
	NLists int
	// KMeansIters bounds Lloyd iterations (default 10).
	KMeansIters int
	// Seed drives centroid initialization.
	Seed int64
	// NProbe is the default number of partitions scanned per query
	// (default 8, capped at NLists).
	NProbe int
}

func (c Config) withDefaults(n int) Config {
	if c.NLists <= 0 {
		c.NLists = isqrt(n)
	}
	if c.NLists > n {
		c.NLists = n
	}
	if c.NLists < 1 {
		c.NLists = 1
	}
	if c.KMeansIters <= 0 {
		c.KMeansIters = 10
	}
	if c.NProbe <= 0 {
		c.NProbe = 8
	}
	if c.NProbe > c.NLists {
		c.NProbe = c.NLists
	}
	return c
}

func isqrt(n int) int {
	if n <= 0 {
		return 0
	}
	x := 1
	for x*x < n {
		x++
	}
	return x
}

// Result is one search hit.
type Result struct {
	ID  int
	Sim float32
}

// Index is a built IVF-Flat index over unit-norm vectors. Concurrent
// searches are safe, including against concurrent Add/Recluster calls
// (mutations take the write lock, probes the read lock).
type Index struct {
	cfg       Config
	dim       int
	centroids *mat.Matrix
	lists     [][]int
	vectors   *mat.Matrix

	mu sync.RWMutex

	distanceCalls atomic.Int64
}

// Build constructs the index over the rows of data (copied and normalized).
func Build(data *mat.Matrix, cfg Config) (*Index, error) {
	n := data.Rows()
	if n == 0 {
		return nil, errors.New("ivf: cannot build over empty input")
	}
	cfg = cfg.withDefaults(n)
	vecs := data.Clone()
	vecs.NormalizeRows()

	centroids, assign := kmeans(vecs, cfg.NLists, cfg.KMeansIters, cfg.Seed)
	lists := make([][]int, cfg.NLists)
	for id, c := range assign {
		lists[c] = append(lists[c], id)
	}
	return &Index{
		cfg:       cfg,
		dim:       data.Cols(),
		centroids: centroids,
		lists:     lists,
		vectors:   vecs,
	}, nil
}

// kmeans runs Lloyd's algorithm with inner-product assignment over
// unit-norm rows (spherical k-means). Returns centroids and assignments.
func kmeans(data *mat.Matrix, k, iters int, seed int64) (*mat.Matrix, []int) {
	n, d := data.Rows(), data.Cols()
	rng := rand.New(rand.NewSource(seed))
	centroids := mat.New(k, d)
	// Initialize from distinct random points.
	perm := rng.Perm(n)
	for c := 0; c < k; c++ {
		copy(centroids.Row(c), data.Row(perm[c%n]))
	}
	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestSim := 0, float32(-2)
			ri := data.Row(i)
			for c := 0; c < k; c++ {
				if s := vec.Dot(vec.KernelSIMD, ri, centroids.Row(c)); s > bestSim {
					best, bestSim = c, s
				}
			}
			if assign[i] != best || it == 0 {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids as normalized means.
		counts := make([]int, k)
		next := mat.New(k, d)
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			vec.AXPY(1, data.Row(i), next.Row(c))
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster from a random point.
				copy(next.Row(c), data.Row(rng.Intn(n)))
			}
			vec.Normalize(next.Row(c))
		}
		centroids = next
		if !changed {
			break
		}
	}
	return centroids, assign
}

// Len returns the number of indexed vectors.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.vectors.Rows()
}

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// NLists returns the number of partitions.
func (ix *Index) NLists() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.lists)
}

// DistanceCalls returns the comparisons performed by searches so far.
func (ix *Index) DistanceCalls() int64 { return ix.distanceCalls.Load() }

// NProbe returns the default partitions-per-probe setting that searches
// without an explicit override use.
func (ix *Index) NProbe() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.cfg.NProbe
}

// SetNProbe changes the default partitions-per-probe, clamped to
// [1, NLists], and returns the applied value. Safe against concurrent
// searches — this is the knob the recall-SLO tuner adjusts.
func (ix *Index) SetNProbe(n int) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if n < 1 {
		n = 1
	}
	if n > len(ix.lists) {
		n = len(ix.lists)
	}
	ix.cfg.NProbe = n
	return n
}

// Knob identifies NProbe as the index's tunable recall/cost knob.
func (ix *Index) Knob() (string, int) { return "nprobe", ix.NProbe() }

// SetKnob applies a new NProbe (vindex.TunableIndex).
func (ix *Index) SetKnob(v int) int { return ix.SetNProbe(v) }

// SearchOptions tunes a probe.
type SearchOptions struct {
	// NProbe overrides the number of partitions scanned (index default
	// if <=0; more partitions raise recall and cost).
	NProbe int
	// Filter restricts results to set rows. Unlike HNSW's traversal-bound
	// pre-filter, IVF checks the bitmap before computing distances, so
	// filtering reduces probe cost proportionally.
	Filter *relational.Bitmap
}

// Search returns the (approximately) k most similar indexed vectors,
// sorted descending by similarity.
func (ix *Index) Search(q []float32, k int, opts SearchOptions) ([]Result, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("ivf: query dim %d, index dim %d", len(q), ix.dim)
	}
	if k <= 0 {
		return nil, errors.New("ivf: k must be positive")
	}
	nq := vec.Clone(q)
	vec.Normalize(nq)

	ix.mu.RLock()
	defer ix.mu.RUnlock()
	nprobe := opts.NProbe
	if nprobe <= 0 {
		nprobe = ix.cfg.NProbe // under the lock: a re-cluster may adjust it
	}
	if nprobe > len(ix.lists) {
		nprobe = len(ix.lists)
	}

	// Rank centroids by similarity; scan the nprobe best lists.
	cands := make([]scoredList, len(ix.lists))
	for c := range ix.lists {
		ix.distanceCalls.Add(1)
		cands[c] = scoredList{c: c, sim: vec.Dot(vec.KernelSIMD, nq, ix.centroids.Row(c))}
	}
	topNListsDesc(cands, nprobe)

	res := &minHeap{}
	heap.Init(res)
	for _, sc := range cands[:nprobe] {
		for _, id := range ix.lists[sc.c] {
			if opts.Filter != nil && !opts.Filter.Get(id) {
				continue
			}
			ix.distanceCalls.Add(1)
			s := vec.Dot(vec.KernelSIMD, nq, ix.vectors.Row(id))
			if res.Len() < k {
				heap.Push(res, Result{ID: id, Sim: s})
			} else if s > (*res)[0].Sim {
				(*res)[0] = Result{ID: id, Sim: s}
				heap.Fix(res, 0)
			}
		}
	}
	out := make([]Result, res.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(res).(Result)
	}
	return out, nil
}

// scoredList pairs a partition with its centroid similarity to the query.
type scoredList struct {
	c   int
	sim float32
}

// topNListsDesc moves the n highest-similarity entries to the front
// (selection over the centroid count, which is small).
func topNListsDesc(s []scoredList, n int) {
	for i := 0; i < n && i < len(s); i++ {
		best := i
		for j := i + 1; j < len(s); j++ {
			if s[j].sim > s[best].sim {
				best = j
			}
		}
		s[i], s[best] = s[best], s[i]
	}
}

// minHeap keeps the current k best with the worst on top.
type minHeap []Result

func (h minHeap) Len() int           { return len(h) }
func (h minHeap) Less(i, j int) bool { return h[i].Sim < h[j].Sim }
func (h minHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x any)        { *h = append(*h, x.(Result)) }
func (h *minHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

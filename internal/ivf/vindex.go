package ivf

import (
	"ejoin/internal/relational"
	"ejoin/internal/vindex"
)

// TopK implements vindex.Index: beam maps to nprobe (partitions scanned;
// <=0 uses the index default). See Search for semantics.
func (ix *Index) TopK(q []float32, k, beam int, filter *relational.Bitmap) ([]vindex.Hit, error) {
	res, err := ix.Search(q, k, SearchOptions{NProbe: beam, Filter: filter})
	if err != nil {
		return nil, err
	}
	hits := make([]vindex.Hit, len(res))
	for i, r := range res {
		hits[i] = vindex.Hit{ID: r.ID, Sim: r.Sim}
	}
	return hits, nil
}

var _ vindex.Index = (*Index)(nil)
var _ vindex.TunableIndex = (*Index)(nil)

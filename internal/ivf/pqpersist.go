package ivf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"ejoin/internal/mat"
	"ejoin/internal/quant"
)

// Binary serialization of the PQ-compressed index: configuration, coarse
// centroids, inverted lists, codes, and the trained codebook — everything
// except the rerank vectors, which alias base-table storage and are
// re-attached after Load. Little-endian, versioned via the magic.

var pqPersistMagic = [8]byte{'E', 'J', 'P', 'Q', 'F', '0', '0', '1'}

// PQSnapshotKind is the durable-layer identifier for IVF-PQ payloads.
const PQSnapshotKind = "ivf-pq"

// Kind implements vindex.Snapshotter.
func (ix *PQIndex) Kind() string { return PQSnapshotKind }

// WriteSnapshot implements vindex.Snapshotter by delegating to Save.
func (ix *PQIndex) WriteSnapshot(w io.Writer) error { return ix.Save(w) }

// Save writes the index. Built PQ indexes are immutable, so any built
// index qualifies.
func (ix *PQIndex) Save(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(pqPersistMagic[:]); err != nil {
		return fmt.Errorf("ivf: writing pq header: %w", err)
	}
	le := binary.LittleEndian
	writeU64 := func(v uint64) error { return binary.Write(bw, le, v) }

	n := ix.Len()
	hdr := []uint64{
		uint64(ix.dim),
		uint64(len(ix.lists)),
		uint64(ix.cfg.KMeansIters),
		uint64(ix.cfg.Seed),
		uint64(ix.cfg.NProbe),
		uint64(n),
	}
	for _, v := range hdr {
		if err := writeU64(v); err != nil {
			return fmt.Errorf("ivf: writing pq header: %w", err)
		}
	}
	for _, v := range ix.centroids.Data {
		if err := binary.Write(bw, le, math.Float32bits(v)); err != nil {
			return fmt.Errorf("ivf: writing pq centroids: %w", err)
		}
	}
	for _, list := range ix.lists {
		if err := writeU64(uint64(len(list))); err != nil {
			return fmt.Errorf("ivf: writing pq lists: %w", err)
		}
		for _, id := range list {
			if err := writeU64(uint64(id)); err != nil {
				return fmt.Errorf("ivf: writing pq lists: %w", err)
			}
		}
	}
	// Codebook before codes: the code block's length is n·M, and M is
	// recorded in the codebook header, so this order keeps the format
	// single-pass for the loader.
	if err := ix.book.Save(bw); err != nil {
		return fmt.Errorf("ivf: writing pq codebook: %w", err)
	}
	if _, err := bw.Write(ix.codes); err != nil {
		return fmt.Errorf("ivf: writing pq codes: %w", err)
	}
	return bw.Flush()
}

// LoadPQ reads an index saved with Save. DistanceCalls starts at zero and
// no rerank vectors are attached.
func LoadPQ(r io.Reader) (*PQIndex, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("ivf: reading pq header: %w", err)
	}
	if magic != pqPersistMagic {
		return nil, fmt.Errorf("ivf: bad magic %q (not an ejoin IVF-PQ file?)", magic)
	}
	le := binary.LittleEndian
	readU64 := func() (uint64, error) {
		var v uint64
		err := binary.Read(br, le, &v)
		return v, err
	}
	var hdr [6]uint64
	for i := range hdr {
		v, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("ivf: reading pq header: %w", err)
		}
		hdr[i] = v
	}
	dim := int(hdr[0])
	nlists := int(hdr[1])
	n := int(hdr[5])
	if dim <= 0 || nlists <= 0 || n < 0 {
		return nil, fmt.Errorf("ivf: corrupt pq header (dim=%d nlists=%d n=%d)", dim, nlists, n)
	}
	const maxReasonable = 1 << 32
	if uint64(n)*uint64(dim) > maxReasonable || uint64(nlists)*uint64(dim) > maxReasonable {
		return nil, fmt.Errorf("ivf: implausible pq size %d x %d (%d lists)", n, dim, nlists)
	}
	cfg := Config{
		NLists:      nlists,
		KMeansIters: int(hdr[2]),
		Seed:        int64(hdr[3]),
		NProbe:      int(hdr[4]),
	}
	centroids := mat.New(nlists, dim)
	for i := range centroids.Data {
		var bits uint32
		if err := binary.Read(br, le, &bits); err != nil {
			return nil, fmt.Errorf("ivf: reading pq centroids: %w", err)
		}
		centroids.Data[i] = math.Float32frombits(bits)
	}
	lists := make([][]int, nlists)
	total := 0
	for c := range lists {
		sz, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("ivf: reading pq list %d: %w", c, err)
		}
		if sz > uint64(n) {
			return nil, fmt.Errorf("ivf: corrupt pq list %d (len=%d n=%d)", c, sz, n)
		}
		list := make([]int, sz)
		for i := range list {
			id, err := readU64()
			if err != nil {
				return nil, fmt.Errorf("ivf: reading pq list %d: %w", c, err)
			}
			if int(id) >= n {
				return nil, fmt.Errorf("ivf: corrupt pq id %d in list %d (n=%d)", id, c, n)
			}
			list[i] = int(id)
		}
		lists[c] = list
		total += len(list)
	}
	if total != n {
		return nil, fmt.Errorf("ivf: pq lists hold %d ids, index has %d vectors", total, n)
	}
	book, err := quant.ReadCodebook(br)
	if err != nil {
		return nil, err
	}
	if book.Dim() != dim {
		return nil, fmt.Errorf("ivf: pq codebook dim %d, index dim %d", book.Dim(), dim)
	}
	codes := make([]byte, n*book.M())
	if _, err := io.ReadFull(br, codes); err != nil {
		return nil, fmt.Errorf("ivf: reading pq codes: %w", err)
	}
	// Every code must index inside the codebook: an out-of-range byte
	// would panic (last subspace) or silently mis-score (earlier ones) at
	// query time.
	for i, c := range codes {
		if int(c) >= book.K() {
			return nil, fmt.Errorf("ivf: corrupt pq code %d at offset %d (k=%d)", c, i, book.K())
		}
	}
	return &PQIndex{
		cfg:       cfg,
		dim:       dim,
		centroids: centroids,
		lists:     lists,
		codes:     codes,
		book:      book,
	}, nil
}

package ivf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"ejoin/internal/mat"
)

// Binary serialization of the index. IVF construction is cheaper than
// HNSW's but k-means over a large corpus is still seconds of work probed
// for milliseconds, so the durable layer snapshots built indexes and
// restores them on boot. The format is little-endian, versioned via the
// magic, and self-contained: configuration, centroids, inverted lists,
// and the normalized vectors.

var persistMagic = [8]byte{'E', 'J', 'I', 'V', 'F', '0', '0', '1'}

// SnapshotKind is the durable-layer identifier for IVF-Flat payloads.
const SnapshotKind = "ivf-flat"

// Kind implements vindex.Snapshotter.
func (ix *Index) Kind() string { return SnapshotKind }

// WriteSnapshot implements vindex.Snapshotter by delegating to Save.
func (ix *Index) WriteSnapshot(w io.Writer) error { return ix.Save(w) }

// Save writes the index. The index must not be mutated concurrently
// (built IVF indexes are immutable, so any built index qualifies).
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(persistMagic[:]); err != nil {
		return fmt.Errorf("ivf: writing header: %w", err)
	}
	le := binary.LittleEndian
	writeU64 := func(v uint64) error { return binary.Write(bw, le, v) }

	n := ix.vectors.Rows()
	hdr := []uint64{
		uint64(ix.dim),
		uint64(len(ix.lists)),
		uint64(ix.cfg.KMeansIters),
		uint64(ix.cfg.Seed),
		uint64(ix.cfg.NProbe),
		uint64(n),
	}
	for _, v := range hdr {
		if err := writeU64(v); err != nil {
			return fmt.Errorf("ivf: writing header: %w", err)
		}
	}
	writeMat := func(m *mat.Matrix, what string) error {
		for _, v := range m.Data {
			if err := binary.Write(bw, le, math.Float32bits(v)); err != nil {
				return fmt.Errorf("ivf: writing %s: %w", what, err)
			}
		}
		return nil
	}
	if err := writeMat(ix.centroids, "centroids"); err != nil {
		return err
	}
	for _, list := range ix.lists {
		if err := writeU64(uint64(len(list))); err != nil {
			return fmt.Errorf("ivf: writing lists: %w", err)
		}
		for _, id := range list {
			if err := writeU64(uint64(id)); err != nil {
				return fmt.Errorf("ivf: writing lists: %w", err)
			}
		}
	}
	if err := writeMat(ix.vectors, "vectors"); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads an index saved with Save. DistanceCalls starts at zero.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("ivf: reading header: %w", err)
	}
	if magic != persistMagic {
		return nil, fmt.Errorf("ivf: bad magic %q (not an ejoin IVF file?)", magic)
	}
	le := binary.LittleEndian
	readU64 := func() (uint64, error) {
		var v uint64
		err := binary.Read(br, le, &v)
		return v, err
	}
	var hdr [6]uint64
	for i := range hdr {
		v, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("ivf: reading header: %w", err)
		}
		hdr[i] = v
	}
	dim := int(hdr[0])
	nlists := int(hdr[1])
	n := int(hdr[5])
	if dim <= 0 || nlists <= 0 || n < 0 {
		return nil, fmt.Errorf("ivf: corrupt header (dim=%d nlists=%d n=%d)", dim, nlists, n)
	}
	const maxReasonable = 1 << 32
	if uint64(n)*uint64(dim) > maxReasonable || uint64(nlists)*uint64(dim) > maxReasonable {
		return nil, fmt.Errorf("ivf: implausible size %d x %d (%d lists)", n, dim, nlists)
	}
	cfg := Config{
		NLists:      nlists,
		KMeansIters: int(hdr[2]),
		Seed:        int64(hdr[3]),
		NProbe:      int(hdr[4]),
	}

	readMat := func(rows int, what string) (*mat.Matrix, error) {
		m := mat.New(rows, dim)
		for i := range m.Data {
			var bits uint32
			if err := binary.Read(br, le, &bits); err != nil {
				return nil, fmt.Errorf("ivf: reading %s: %w", what, err)
			}
			m.Data[i] = math.Float32frombits(bits)
		}
		return m, nil
	}
	centroids, err := readMat(nlists, "centroids")
	if err != nil {
		return nil, err
	}
	lists := make([][]int, nlists)
	total := 0
	for c := range lists {
		sz, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("ivf: reading list %d: %w", c, err)
		}
		if sz > uint64(n) {
			return nil, fmt.Errorf("ivf: corrupt list %d (len=%d n=%d)", c, sz, n)
		}
		list := make([]int, sz)
		for i := range list {
			id, err := readU64()
			if err != nil {
				return nil, fmt.Errorf("ivf: reading list %d: %w", c, err)
			}
			if int(id) >= n {
				return nil, fmt.Errorf("ivf: corrupt id %d in list %d (n=%d)", id, c, n)
			}
			list[i] = int(id)
		}
		lists[c] = list
		total += len(list)
	}
	if total != n {
		return nil, fmt.Errorf("ivf: lists hold %d ids, index has %d vectors", total, n)
	}
	vectors, err := readMat(n, "vectors")
	if err != nil {
		return nil, err
	}
	return &Index{
		cfg:       cfg,
		dim:       dim,
		centroids: centroids,
		lists:     lists,
		vectors:   vectors,
	}, nil
}

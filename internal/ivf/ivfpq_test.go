package ivf

import (
	"bytes"
	"math/rand"
	"testing"

	"ejoin/internal/mat"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
)

// clusteredVectors builds unit-norm vectors around nclusters random
// centers — the workload shape where IVF partitioning pays off and PQ
// residual codes carry signal (embedding corpora are clustered; uniform
// random vectors are the information-theoretic worst case for M-byte
// codes and defeat any quantizer).
func clusteredVectors(seed int64, n, dim, nclusters int) *mat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	centers := mat.New(nclusters, dim)
	for i := 0; i < nclusters; i++ {
		row := centers.Row(i)
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
		vec.Normalize(row)
	}
	m := mat.New(n, dim)
	for i := 0; i < n; i++ {
		c := centers.Row(rng.Intn(nclusters))
		row := m.Row(i)
		for j := range row {
			row[j] = c[j] + 0.1*float32(rng.NormFloat64())
		}
		vec.Normalize(row)
	}
	return m
}

// exactTopK is the ground-truth top-k by exhaustive normalized dot.
func exactTopK(data *mat.Matrix, q []float32, k int) []int {
	nq := vec.Clone(q)
	vec.Normalize(nq)
	type scored struct {
		id  int
		sim float32
	}
	all := make([]scored, data.Rows())
	for i := range all {
		all[i] = scored{i, vec.Dot(vec.KernelScalar, nq, data.Row(i))}
	}
	for i := 0; i < k && i < len(all); i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].sim > all[best].sim {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	out := make([]int, 0, k)
	for i := 0; i < k && i < len(all); i++ {
		out = append(out, all[i].id)
	}
	return out
}

// TestPQIVFRecallAndCompression is the acceptance gate: with rerank
// enabled the compressed index reaches >= 0.95 recall@10 against exact
// F32 top-k, while its resident bytes stay >= 4x below the flat index's
// normalized vector copy.
func TestPQIVFRecallAndCompression(t *testing.T) {
	n, dim, nq, k := 3000, 64, 60, 10
	data := clusteredVectors(101, n, dim, 32)
	ix, err := BuildPQ(data, Config{NLists: 32, Seed: 1, NProbe: 8}, quant.PQConfig{M: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	norm := data.Clone()
	norm.NormalizeRows()
	if err := ix.AttachRerank(norm); err != nil {
		t.Fatal(err)
	}

	flatBytes := norm.SizeBytes()
	if ratio := float64(flatBytes) / float64(ix.SizeBytes()); ratio < 4 {
		t.Fatalf("compression %.2fx < 4x (index %d bytes, flat vectors %d bytes)",
			ratio, ix.SizeBytes(), flatBytes)
	}

	queries := clusteredVectors(103, nq, dim, 24)
	hits, total := 0, 0
	for qi := 0; qi < nq; qi++ {
		q := queries.Row(qi)
		truth := exactTopK(norm, q, k)
		truthSet := make(map[int]bool, k)
		for _, id := range truth {
			truthSet[id] = true
		}
		res, err := ix.Search(q, k, PQSearchOptions{NProbe: 12, RerankC: 8 * k})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if truthSet[r.ID] {
				hits++
			}
		}
		total += len(truth)
	}
	recall := float64(hits) / float64(total)
	if recall < 0.95 {
		t.Fatalf("recall@%d = %.3f < 0.95 with rerank enabled", k, recall)
	}
}

// TestPQIVFRerankImproves: the exact rerank pass strictly dominates pure
// ADC ordering (rerank similarities are exact dots; ADC-only scores are
// estimates), and rerank results are sorted descending.
func TestPQIVFRerankImproves(t *testing.T) {
	data := clusteredVectors(107, 1500, 32, 16)
	norm := data.Clone()
	norm.NormalizeRows()
	build := func() *PQIndex {
		ix, err := BuildPQ(data, Config{NLists: 16, Seed: 3, NProbe: 16}, quant.PQConfig{M: 8, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	adcOnly := build()
	reranked := build()
	if err := reranked.AttachRerank(norm); err != nil {
		t.Fatal(err)
	}
	queries := clusteredVectors(109, 30, 32, 16)
	k := 10
	adcHits, rerankHits, total := 0, 0, 0
	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		truthSet := map[int]bool{}
		for _, id := range exactTopK(norm, q, k) {
			truthSet[id] = true
		}
		ra, err := adcOnly.Search(q, k, PQSearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rr, err := reranked.Search(q, k, PQSearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(rr); i++ {
			if rr[i].Sim > rr[i-1].Sim {
				t.Fatalf("query %d: rerank results not sorted descending", qi)
			}
		}
		for _, r := range ra {
			if truthSet[r.ID] {
				adcHits++
			}
		}
		for _, r := range rr {
			if truthSet[r.ID] {
				rerankHits++
			}
		}
		total += k
	}
	if rerankHits < adcHits {
		t.Fatalf("rerank recall %d/%d below ADC-only %d/%d", rerankHits, total, adcHits, total)
	}
	if float64(rerankHits)/float64(total) < 0.9 {
		t.Fatalf("rerank recall %d/%d unexpectedly low", rerankHits, total)
	}
}

// TestPQIVFFilter: pre-filtering restricts results and reduces scoring
// work, matching IVF-Flat's semantics.
func TestPQIVFFilter(t *testing.T) {
	data := clusteredVectors(113, 600, 16, 8)
	norm := data.Clone()
	norm.NormalizeRows()
	ix, err := BuildPQ(data, Config{NLists: 8, Seed: 5, NProbe: 8}, quant.PQConfig{M: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.AttachRerank(norm); err != nil {
		t.Fatal(err)
	}
	filter := relational.NewBitmap(600)
	for i := 0; i < 600; i += 3 {
		filter.Set(i)
	}
	res, err := ix.Search(data.Row(0), 20, PQSearchOptions{Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results under filter")
	}
	for _, r := range res {
		if r.ID%3 != 0 {
			t.Fatalf("result %d violates filter", r.ID)
		}
	}
}

// TestPQIVFVindex: the compressed index satisfies the planner's access
// path contract.
func TestPQIVFVindex(t *testing.T) {
	data := clusteredVectors(127, 400, 16, 8)
	ix, err := BuildPQ(data, Config{Seed: 7}, quant.PQConfig{M: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Kind() != PQSnapshotKind {
		t.Fatalf("kind %q", ix.Kind())
	}
	hits, err := ix.TopK(data.Row(3), 5, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 5 {
		t.Fatalf("%d hits, want 5", len(hits))
	}
	if ix.DistanceCalls() == 0 {
		t.Fatal("distance calls not counted")
	}
}

// TestPQIVFSaveLoad: the snapshot round-trips into an index with
// identical post-rerank results once the rerank matrix is re-attached.
func TestPQIVFSaveLoad(t *testing.T) {
	data := clusteredVectors(131, 800, 24, 12)
	norm := data.Clone()
	norm.NormalizeRows()
	ix, err := BuildPQ(data, Config{NLists: 12, Seed: 9, NProbe: 6}, quant.PQConfig{M: 6, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.AttachRerank(norm); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPQ(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.HasRerank() {
		t.Fatal("rerank vectors must not survive serialization")
	}
	if err := back.AttachRerank(norm); err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 20; qi++ {
		q := data.Row(qi * 7)
		want, err := ix.Search(q, 10, PQSearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Search(q, 10, PQSearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("query %d: %d vs %d results", qi, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("query %d result %d: %+v vs %+v", qi, i, want[i], got[i])
			}
		}
	}
	// Corrupt magic is rejected.
	raw := buf.Bytes()
	raw[0] ^= 0xff
	if _, err := LoadPQ(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

package embstore

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ejoin/internal/mat"
	"ejoin/internal/model"
	"ejoin/internal/vec"
)

// BatchStats reports what one EmbedAll call did, for per-query accounting
// (the executor's Stats.ModelCalls must reflect actual model work, not
// input cardinality, once a cache sits in front of the model).
type BatchStats struct {
	// Hits is the number of requested rows served from cache.
	Hits int64
	// Misses is the number of distinct new inputs this call embedded.
	Misses int64
	// Merged is the number of rows that reused another row's or another
	// query's in-flight model call.
	Merged int64
	// ModelCalls is the number of Model.Embed invocations made.
	ModelCalls int64
}

// BatchOptions tunes the cache-less EmbedBatch scheduler.
type BatchOptions struct {
	// Threads caps worker parallelism; <=0 uses GOMAXPROCS.
	Threads int
	// ChunkSize is inputs per scheduler task; <=0 uses 64.
	ChunkSize int
}

// EmbedBatch is the chunked parallel embedding scheduler without a cache:
// it maps every input through the model and returns normalized row
// vectors, identical to sequential embedding. Workers pull fixed-size
// chunks from a shared queue, so skewed per-input model latency
// load-balances instead of stalling a static partition (the weakness of
// the previous per-range worker pool). core.EmbedParallel delegates here.
func EmbedBatch(ctx context.Context, m model.Model, inputs []string, opts BatchOptions) (*mat.Matrix, error) {
	out := mat.New(len(inputs), m.Dim())
	err := embedChunks(ctx, m, inputs, opts, func(i int, raw []float32) {
		vec.NormalizeInto(out.Row(i), raw)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// embedChunks runs the shared scheduler: inputs are split into chunks,
// workers claim chunks via an atomic cursor, and emit is invoked once per
// input with the model's raw (not yet normalized) output. emit is called
// concurrently but never twice for the same index. The first error stops
// the scan; remaining workers drain quickly via the shared error flag.
func embedChunks(ctx context.Context, m model.Model, inputs []string, opts BatchOptions, emit func(i int, raw []float32)) error {
	n := len(inputs)
	if n == 0 {
		return nil
	}
	threads := opts.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > n {
		threads = n
	}
	chunk := opts.ChunkSize
	if chunk <= 0 {
		chunk = 64
	}
	// The configured chunk size is an upper bound: small batches shrink it
	// so every worker gets several chunks (load balance beats batching
	// when there is little work to batch).
	if per := (n + threads*4 - 1) / (threads * 4); chunk > per {
		chunk = per
	}
	if chunk < 1 {
		chunk = 1
	}
	dim := m.Dim()

	if threads <= 1 {
		for i, s := range inputs {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("embstore: embed cancelled at row %d: %w", i, err)
			}
			raw, err := m.Embed(s)
			if err != nil {
				return fmt.Errorf("embstore: embedding row %d: %w", i, err)
			}
			if len(raw) != dim {
				return fmt.Errorf("embstore: model returned dim %d, declared %d", len(raw), dim)
			}
			emit(i, raw)
		}
		return nil
	}

	var cursor atomic.Int64
	var failed atomic.Bool
	errs := make([]error, threads)
	var wg sync.WaitGroup
	wg.Add(threads)
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if err := ctx.Err(); err != nil {
						errs[w] = fmt.Errorf("embstore: embed cancelled at row %d: %w", i, err)
						failed.Store(true)
						return
					}
					raw, err := m.Embed(inputs[i])
					if err != nil {
						errs[w] = fmt.Errorf("embstore: embedding row %d: %w", i, err)
						failed.Store(true)
						return
					}
					if len(raw) != dim {
						errs[w] = fmt.Errorf("embstore: model returned dim %d, declared %d", len(raw), dim)
						failed.Store(true)
						return
					}
					emit(i, raw)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// missGroup collects every output row that needs one distinct key, plus
// the flight that will deliver it.
type missGroup struct {
	input string
	key   string
	sh    *shard
	fl    *flight
	rows  []int
	done  bool // owned flights: published by this call
}

// EmbedAll is the store-backed embedding operator E_µ over a column: rows
// already cached are copied out, remaining distinct inputs are coalesced
// and embedded by the chunked parallel scheduler, and inputs another
// query is concurrently embedding are awaited rather than recomputed.
// The result is identical to EmbedBatch/sequential embedding; the second
// run over the same corpus performs zero model calls. Zero fields of
// opts fall back to the store's configuration, so callers with their own
// thread budget (the executor's Options.Threads) keep control of miss
// parallelism.
func (s *Store) EmbedAll(ctx context.Context, m model.Model, inputs []string, opts BatchOptions) (*mat.Matrix, BatchStats, error) {
	out := mat.New(len(inputs), m.Dim())
	var bs BatchStats
	fp := Fingerprint(m)

	var owned []*missGroup   // flights this call must publish
	var foreign []*missGroup // flights owned by concurrent callers
	groups := make(map[string]*missGroup)

	for i, in := range inputs {
		k := key(fp, in)
		if g, ok := groups[k]; ok {
			// Duplicate within this batch: one model call serves them all.
			g.rows = append(g.rows, i)
			s.merged.Add(1)
			bs.Merged++
			continue
		}
		sh := s.shardFor(k)
		sh.mu.Lock()
		if el, ok := sh.entries[k]; ok {
			sh.lru.MoveToFront(el)
			copy(out.Row(i), el.Value.(*entry).vec)
			sh.mu.Unlock()
			s.hits.Add(1)
			bs.Hits++
			continue
		}
		if fl, ok := sh.inflight[k]; ok {
			sh.mu.Unlock()
			g := &missGroup{input: in, key: k, sh: sh, fl: fl, rows: []int{i}}
			groups[k] = g
			foreign = append(foreign, g)
			s.merged.Add(1)
			bs.Merged++
			continue
		}
		fl := &flight{done: make(chan struct{})}
		sh.inflight[k] = fl
		sh.mu.Unlock()
		g := &missGroup{input: in, key: k, sh: sh, fl: fl, rows: []int{i}}
		groups[k] = g
		owned = append(owned, g)
		s.misses.Add(1)
		bs.Misses++
	}

	// Embed owned misses with the shared scheduler. Whatever happens, every
	// owned flight must be published, or waiters would block forever.
	var schedErr error
	if len(owned) > 0 {
		texts := make([]string, len(owned))
		for i, g := range owned {
			texts[i] = g.input
		}
		if opts.Threads <= 0 {
			opts.Threads = s.cfg.Threads
		}
		if opts.ChunkSize <= 0 {
			opts.ChunkSize = s.cfg.ChunkSize
		}
		var calls atomic.Int64
		schedErr = embedChunks(ctx, m, texts, opts, func(i int, raw []float32) {
			calls.Add(1)
			g := owned[i]
			v := make([]float32, len(raw))
			vec.NormalizeInto(v, raw)
			s.publish(g.sh, g.key, g.fl, v, nil)
			g.done = true
			for _, r := range g.rows {
				copy(out.Row(r), v)
			}
		})
		s.modelCalls.Add(calls.Load())
		bs.ModelCalls = calls.Load()
		if schedErr != nil {
			for _, g := range owned {
				if !g.done {
					s.publish(g.sh, g.key, g.fl, nil, schedErr)
				}
			}
			return nil, bs, schedErr
		}
	}

	// Collect results from concurrent callers' flights.
	for _, g := range foreign {
		v, err := awaitFlight(ctx, g.fl)
		if err != nil && ctx.Err() == nil && isCtxErr(err) {
			// The flight's owner was cancelled, not us: re-request the key
			// ourselves instead of inheriting the cancellation.
			v, err = s.Get(ctx, m, g.input)
		}
		if err != nil {
			return nil, bs, fmt.Errorf("embstore: merged embed of %q failed: %w", truncate(g.input), err)
		}
		for _, r := range g.rows {
			copy(out.Row(r), v)
		}
	}
	return out, bs, nil
}

// Package embstore is the shared, cross-query embedding store: a sharded,
// concurrency-safe cache of model embeddings keyed by (model fingerprint,
// input) with single-flight deduplication and a batch scheduler that
// coalesces cache misses into chunked parallel model calls.
//
// The paper's central cost observation is that the embedding operator E_µ
// dominates end-to-end join time, which is why the optimizer prefetches
// embeddings once per tuple instead of once per pair. This package extends
// that reuse across queries: every Query.Run, CLI invocation, and benchmark
// repetition over the same corpus pays the model cost once, after which
// lookups are memory reads. Under concurrent traffic, requests for the same
// input string are merged into one in-flight model call (single flight),
// and memory is bounded by a per-shard LRU eviction policy.
//
// The store observes the Model contract: embeddings handed out are fresh,
// caller-owned, unit-norm copies.
package embstore

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"ejoin/internal/model"
	"ejoin/internal/vec"
)

// Config tunes a Store. The zero value is usable: 32 shards, unbounded
// memory, chunk size 64, GOMAXPROCS embedding threads.
type Config struct {
	// Shards is the number of lock shards (rounded up to a power of two).
	// More shards means less contention under concurrent queries.
	Shards int
	// MaxBytes bounds the store's resident embedding bytes across all
	// shards; 0 means unbounded. Eviction is LRU per shard.
	MaxBytes int64
	// ChunkSize is how many misses one scheduler task embeds before
	// picking up the next chunk (batching amortizes scheduling overhead
	// while keeping workers load-balanced).
	ChunkSize int
	// Threads caps the batch scheduler's parallelism; <=0 uses GOMAXPROCS.
	Threads int
}

// Stats is the store's observability surface.
type Stats struct {
	// Hits is the number of lookups served from the cache.
	Hits int64 `json:"hits"`
	// Misses is the number of lookups that triggered a model call.
	Misses int64 `json:"misses"`
	// Merged is the number of lookups that joined another caller's
	// in-flight model call (single-flight deduplication) or a duplicate
	// within one batch.
	Merged int64 `json:"merged"`
	// Evictions is the number of entries evicted by the LRU policy.
	Evictions int64 `json:"evictions"`
	// ModelCalls is the number of Model.Embed invocations the store made.
	ModelCalls int64 `json:"model_calls"`
	// Entries is the current number of cached embeddings.
	Entries int `json:"entries"`
	// Bytes is the current resident size (vectors + keys + overhead).
	Bytes int64 `json:"bytes"`
}

// HitRatio is Hits / (Hits + Misses + Merged), the fraction of lookups
// that did not wait on a fresh model call of their own.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses + s.Merged
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Fingerprinter lets a model override the cache identity derived from
// Name/Dim (e.g. a remote model whose version string changes semantics).
type Fingerprinter interface {
	Fingerprint() string
}

// Fingerprint is the model component of a cache key. Two models with the
// same fingerprint are assumed to embed identically.
func Fingerprint(m model.Model) string {
	if f, ok := m.(Fingerprinter); ok {
		return f.Fingerprint()
	}
	return m.Name() + "/" + strconv.Itoa(m.Dim())
}

// entry is one cached embedding.
type entry struct {
	key string
	vec []float32
}

// flight is one in-flight model call other lookups can merge into.
type flight struct {
	done chan struct{}
	vec  []float32
	err  error
}

// shard is one lock domain: a map + LRU list + its share of the byte
// budget + the in-flight table for keys hashing here.
type shard struct {
	mu       sync.Mutex
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	inflight map[string]*flight
	bytes    int64
	maxBytes int64 // 0 = unbounded
}

// Store is the shared embedding store. It is safe for concurrent use by
// any number of queries and goroutines.
type Store struct {
	cfg    Config
	shards []*shard

	// onInsert, when set, observes every model-computed entry the store
	// caches (the durable layer's write-behind hook). Loaded atomically so
	// SetOnInsert is safe while lookups run.
	onInsert atomic.Pointer[func(fp, input string, vec []float32)]

	// countsMu guards counts, the per-fingerprint entry tally maintained
	// at insert/evict time so ModelEntries is O(models), not a scan of
	// every shard under its lock.
	countsMu sync.Mutex
	counts   map[string]int

	hits       atomic.Int64
	misses     atomic.Int64
	merged     atomic.Int64
	evictions  atomic.Int64
	modelCalls atomic.Int64
}

// entryOverhead approximates per-entry bookkeeping bytes (map bucket,
// list element, headers) for the byte budget.
const entryOverhead = 96

// New builds a store from cfg (zero value = defaults).
func New(cfg Config) *Store {
	if cfg.Shards <= 0 {
		cfg.Shards = 32
	}
	// Round up to a power of two so shard selection is a mask.
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	cfg.Shards = n
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 64
	}
	if cfg.Threads <= 0 {
		cfg.Threads = runtime.GOMAXPROCS(0)
	}
	s := &Store{cfg: cfg, shards: make([]*shard, n), counts: make(map[string]int)}
	perShard := int64(0)
	if cfg.MaxBytes > 0 {
		perShard = cfg.MaxBytes / int64(n)
		if perShard < 1 {
			perShard = 1
		}
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			entries:  make(map[string]*list.Element),
			lru:      list.New(),
			inflight: make(map[string]*flight),
			maxBytes: perShard,
		}
	}
	return s
}

// key builds the cache key for one (fingerprint, input) pair.
func key(fp, input string) string { return fp + "\x00" + input }

// splitKey undoes key: the fingerprint and input of one cache key.
func splitKey(k string) (fp, input string) {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return k[:i], k[i+1:]
		}
	}
	return k, ""
}

// SetOnInsert installs fn as the store's insert observer: it is invoked
// once for every entry the store caches from a model call (not for
// entries loaded via Put, so a startup loader does not re-persist what it
// just read). fn runs outside shard locks but on the inserting
// goroutine's path — it should hand off quickly (e.g. enqueue to a
// write-behind channel). Pass nil to detach.
func (s *Store) SetOnInsert(fn func(fp, input string, vec []float32)) {
	if fn == nil {
		s.onInsert.Store(nil)
		return
	}
	s.onInsert.Store(&fn)
}

// notifyInsert invokes the insert observer, giving it its own copy.
func (s *Store) notifyInsert(k string, v []float32) {
	p := s.onInsert.Load()
	if p == nil {
		return
	}
	fp, input := splitKey(k)
	(*p)(fp, input, cloneVec(v))
}

// shardFor picks the lock domain for a key (FNV-1a).
func (s *Store) shardFor(k string) *shard {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	return s.shards[h&uint64(len(s.shards)-1)]
}

// Stats snapshots the store's counters and resident size.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:       s.hits.Load(),
		Misses:     s.misses.Load(),
		Merged:     s.merged.Load(),
		Evictions:  s.evictions.Load(),
		ModelCalls: s.modelCalls.Load(),
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Entries += len(sh.entries)
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}

// Contains reports whether (m, input) is cached, without promoting the
// entry or touching statistics — the optimizer's sampling probe.
func (s *Store) Contains(m model.Model, input string) bool {
	k := key(Fingerprint(m), input)
	sh := s.shardFor(k)
	sh.mu.Lock()
	_, ok := sh.entries[k]
	sh.mu.Unlock()
	return ok
}

// Len is the current number of cached embeddings.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Reset drops every cached entry and zeroes the statistics (in-flight
// calls are unaffected: they complete and repopulate the empty cache).
func (s *Store) Reset() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.entries = make(map[string]*list.Element)
		sh.lru.Init()
		sh.bytes = 0
		sh.mu.Unlock()
	}
	s.hits.Store(0)
	s.misses.Store(0)
	s.merged.Store(0)
	s.evictions.Store(0)
	s.modelCalls.Store(0)
	s.countsMu.Lock()
	s.counts = make(map[string]int)
	s.countsMu.Unlock()
}

// Get returns the unit-norm embedding of input under m, from cache when
// present. Concurrent Gets for the same key share one model call; the
// returned slice is a fresh copy owned by the caller.
func (s *Store) Get(ctx context.Context, m model.Model, input string) ([]float32, error) {
	k := key(Fingerprint(m), input)
	sh := s.shardFor(k)

	for {
		sh.mu.Lock()
		if el, ok := sh.entries[k]; ok {
			sh.lru.MoveToFront(el)
			out := cloneVec(el.Value.(*entry).vec)
			sh.mu.Unlock()
			s.hits.Add(1)
			return out, nil
		}
		if fl, ok := sh.inflight[k]; ok {
			sh.mu.Unlock()
			s.merged.Add(1)
			v, err := awaitFlight(ctx, fl)
			if err != nil && ctx.Err() == nil && isCtxErr(err) {
				// The owning caller was cancelled, not us: its cancellation
				// must not fail this lookup. Retry — typically becoming the
				// new owner, since the failed flight is gone.
				continue
			}
			return v, err
		}
		fl := &flight{done: make(chan struct{})}
		sh.inflight[k] = fl
		sh.mu.Unlock()
		s.misses.Add(1)

		v, err := s.embedOne(ctx, m, input)
		s.publish(sh, k, fl, v, err)
		if err != nil {
			return nil, err
		}
		return cloneVec(v), nil
	}
}

// GetOrEmbed adapts Get to the model.EmbedCache contract, so a
// model.CachingModel can delegate to the store. Model.Embed carries no
// context, so this path is not cancellable — a miss (or a merge into a
// slow in-flight call) blocks until the model answers. Callers that need
// deadlines or cancellation should use Get/EmbedAll directly.
func (s *Store) GetOrEmbed(m model.Model, input string) ([]float32, error) {
	return s.Get(context.Background(), m, input)
}

// embedOne runs one model call, validates the dimensionality, and returns
// a fresh normalized vector.
func (s *Store) embedOne(ctx context.Context, m model.Model, input string) ([]float32, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("embstore: embed cancelled: %w", err)
	}
	s.modelCalls.Add(1)
	e, err := m.Embed(input)
	if err != nil {
		return nil, fmt.Errorf("embstore: embedding %q: %w", truncate(input), err)
	}
	if len(e) != m.Dim() {
		return nil, fmt.Errorf("embstore: model %s returned dim %d, declared %d", m.Name(), len(e), m.Dim())
	}
	v := make([]float32, len(e))
	vec.NormalizeInto(v, e)
	return v, nil
}

// publish resolves a flight: caches the result on success, wakes waiters
// either way. Errors are not cached (the next lookup retries).
func (s *Store) publish(sh *shard, k string, fl *flight, v []float32, err error) {
	sh.mu.Lock()
	delete(sh.inflight, k)
	if err == nil {
		s.insertLocked(sh, k, v)
	}
	sh.mu.Unlock()
	if err == nil {
		s.notifyInsert(k, v)
	}
	fl.vec, fl.err = v, err
	close(fl.done)
}

// Put inserts a pre-computed, unit-norm embedding for (fp, input) — the
// durable layer's startup loader path. It bypasses the model, does not
// touch hit/miss statistics, and does not fire the insert observer (a
// loaded entry is already persisted). An existing entry wins: replayed
// duplicates are no-ops. Eviction applies as usual, so a log larger than
// the memory budget loads its most recently appended suffix.
func (s *Store) Put(fp, input string, v []float32) {
	k := key(fp, input)
	sh := s.shardFor(k)
	sh.mu.Lock()
	s.insertLocked(sh, k, cloneVec(v))
	sh.mu.Unlock()
}

// Range calls fn for every cached entry until fn returns false. The
// vector passed to fn is a fresh copy; iteration order is unspecified.
// Each shard's snapshot is taken under its lock, but fn runs outside any
// lock, so fn may call back into the store. Entries inserted or evicted
// concurrently may or may not be observed — Range is a snapshot-ish
// export iterator (the persister's compaction source and the /stats
// per-model counter), not a consistency point.
func (s *Store) Range(fn func(fp, input string, vec []float32) bool) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		snap := make([]*entry, 0, len(sh.entries))
		for _, el := range sh.entries {
			snap = append(snap, el.Value.(*entry))
		}
		sh.mu.Unlock()
		for _, e := range snap {
			fp, input := splitKey(e.key)
			if !fn(fp, input, cloneVec(e.vec)) {
				return
			}
		}
	}
}

// ModelEntries counts cached entries per model fingerprint — the /stats
// surface PR 1 could not report because the store had no export
// iterator. Served from counters maintained at insert/evict time, so
// stats scrapers never walk the cache under shard locks.
func (s *Store) ModelEntries() map[string]int {
	s.countsMu.Lock()
	defer s.countsMu.Unlock()
	out := make(map[string]int, len(s.counts))
	for fp, n := range s.counts {
		out[fp] = n
	}
	return out
}

// countEntry adjusts the per-fingerprint tally for key k by delta,
// dropping zeroed fingerprints so evicted models disappear from stats.
func (s *Store) countEntry(k string, delta int) {
	fp, _ := splitKey(k)
	s.countsMu.Lock()
	s.counts[fp] += delta
	if s.counts[fp] <= 0 {
		delete(s.counts, fp)
	}
	s.countsMu.Unlock()
}

// insertLocked adds an entry and evicts LRU tails past the shard budget.
// The caller holds sh.mu. The newly inserted entry itself is never
// evicted, so a single oversized embedding still caches.
func (s *Store) insertLocked(sh *shard, k string, v []float32) {
	if el, ok := sh.entries[k]; ok {
		// Lost a rare batch/single race; keep the existing entry.
		sh.lru.MoveToFront(el)
		return
	}
	el := sh.lru.PushFront(&entry{key: k, vec: v})
	sh.entries[k] = el
	sh.bytes += entryBytes(k, v)
	s.countEntry(k, 1)
	if sh.maxBytes <= 0 {
		return
	}
	for sh.bytes > sh.maxBytes && sh.lru.Len() > 1 {
		tail := sh.lru.Back()
		if tail == nil || tail == el {
			break
		}
		ev := tail.Value.(*entry)
		sh.lru.Remove(tail)
		delete(sh.entries, ev.key)
		sh.bytes -= entryBytes(ev.key, ev.vec)
		s.countEntry(ev.key, -1)
		s.evictions.Add(1)
	}
}

func entryBytes(k string, v []float32) int64 {
	return int64(len(v)*4+len(k)) + entryOverhead
}

func cloneVec(v []float32) []float32 {
	out := make([]float32, len(v))
	copy(out, v)
	return out
}

func awaitFlight(ctx context.Context, fl *flight) ([]float32, error) {
	select {
	case <-fl.done:
	case <-ctx.Done():
		return nil, fmt.Errorf("embstore: wait cancelled: %w", ctx.Err())
	}
	if fl.err != nil {
		return nil, fl.err
	}
	return cloneVec(fl.vec), nil
}

// isCtxErr reports whether err stems from a context cancellation or
// deadline — the class of flight failures a waiter with a live context
// should retry rather than inherit.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func truncate(s string) string {
	const max = 32
	if len(s) <= max {
		return s
	}
	return s[:max] + "…"
}

package embstore

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ejoin/internal/model"
	"ejoin/internal/vec"
)

func testModel(t *testing.T, dim int) model.Model {
	t.Helper()
	m, err := model.NewHashEmbedder(dim)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func words(r *rand.Rand, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("word-%d", r.Intn(n))
	}
	return out
}

// normalized is the reference embedding: exactly what the store must hand
// back for input under m.
func normalized(t *testing.T, m model.Model, input string) []float32 {
	t.Helper()
	raw, err := m.Embed(input)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float32, len(raw))
	vec.NormalizeInto(out, raw)
	return out
}

func vecsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGetHitMissStats(t *testing.T) {
	m := model.NewCountingModel(testModel(t, 32))
	s := New(Config{})
	ctx := context.Background()

	v1, err := s.Get(ctx, m, "barbecue")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Get(ctx, m, "barbecue")
	if err != nil {
		t.Fatal(err)
	}
	if !vecsEqual(v1, v2) {
		t.Error("hit returned different vector than miss")
	}
	if !vecsEqual(v1, normalized(t, m.Inner, "barbecue")) {
		t.Error("cached vector differs from direct embedding")
	}
	// Caller owns the returned slice: mutating it must not poison the cache.
	v1[0] = 42
	v3, _ := s.Get(ctx, m, "barbecue")
	if v3[0] == 42 {
		t.Error("cache entry aliases caller slice")
	}
	if calls := m.Calls(); calls != 1 {
		t.Errorf("model calls = %d, want 1", calls)
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.ModelCalls != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Bytes <= 0 {
		t.Errorf("bytes = %d", st.Bytes)
	}
}

func TestFingerprintSeparatesModels(t *testing.T) {
	a := testModel(t, 16)
	b, err := model.NewRandomEmbedder(16, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	ctx := context.Background()
	va, _ := s.Get(ctx, a, "token")
	vb, _ := s.Get(ctx, b, "token")
	if vecsEqual(va, vb) {
		t.Error("different models collided in the cache")
	}
	if s.Stats().Entries != 2 {
		t.Errorf("entries = %d, want 2", s.Stats().Entries)
	}
}

// blockingModel parks every Embed on a gate so tests control when the
// single in-flight call completes.
type blockingModel struct {
	inner   model.Model
	gate    chan struct{}
	started atomic.Int64
	calls   atomic.Int64
}

func (b *blockingModel) Embed(input string) ([]float32, error) {
	b.started.Add(1)
	<-b.gate
	b.calls.Add(1)
	return b.inner.Embed(input)
}
func (b *blockingModel) Dim() int     { return b.inner.Dim() }
func (b *blockingModel) Name() string { return b.inner.Name() + "+blocking" }

func TestSingleFlightDedup(t *testing.T) {
	bm := &blockingModel{inner: testModel(t, 24), gate: make(chan struct{})}
	s := New(Config{})
	ctx := context.Background()
	const callers = 16

	var wg sync.WaitGroup
	results := make([][]float32, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Get(ctx, bm, "hot-key")
		}(i)
	}
	// Wait until the owning caller is inside the model, then release.
	for bm.started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(bm.gate)
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !vecsEqual(results[i], results[0]) {
			t.Fatalf("caller %d got a different vector", i)
		}
	}
	if calls := bm.calls.Load(); calls != 1 {
		t.Errorf("model calls = %d, want 1 (single flight)", calls)
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Merged != callers-1 {
		t.Errorf("hits+merged = %d, want %d", st.Hits+st.Merged, callers-1)
	}
}

func TestEmbedAllDedupAndWarmRun(t *testing.T) {
	m := model.NewCountingModel(testModel(t, 32))
	s := New(Config{})
	ctx := context.Background()

	inputs := []string{"a", "b", "a", "c", "b", "a"}
	out, bs, err := s.EmbedAll(ctx, m, inputs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Calls() != 3 {
		t.Errorf("cold model calls = %d, want 3 distinct", m.Calls())
	}
	if bs.Misses != 3 || bs.Merged != 3 || bs.Hits != 0 || bs.ModelCalls != 3 {
		t.Errorf("cold batch stats = %+v", bs)
	}
	for i, in := range inputs {
		if !vecsEqual(out.Row(i), normalized(t, m.Inner, in)) {
			t.Errorf("row %d (%q) differs from direct embedding", i, in)
		}
	}

	// Warm: zero model calls, identical rows.
	m.Reset()
	out2, bs2, err := s.EmbedAll(ctx, m, inputs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Calls() != 0 {
		t.Errorf("warm model calls = %d, want 0", m.Calls())
	}
	if bs2.Hits != int64(len(inputs)) || bs2.Misses != 0 || bs2.ModelCalls != 0 {
		t.Errorf("warm batch stats = %+v", bs2)
	}
	for i := range inputs {
		if !vecsEqual(out.Row(i), out2.Row(i)) {
			t.Errorf("warm row %d differs from cold row", i)
		}
	}
}

func TestEmbedAllErrorPropagates(t *testing.T) {
	boom := errors.New("down")
	bad := &model.FailingModel{
		Inner: testModel(t, 16),
		Match: func(s string) bool { return s == "poison" },
		Err:   boom,
	}
	s := New(Config{})
	ctx := context.Background()
	if _, _, err := s.EmbedAll(ctx, bad, []string{"a", "poison", "b"}, BatchOptions{}); !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
	// The failure must not leave stuck flights: the same keys resolve after
	// the model recovers.
	if _, _, err := s.EmbedAll(ctx, bad, []string{"a", "b"}, BatchOptions{}); err != nil {
		t.Errorf("post-failure embed: %v", err)
	}
	if _, err := s.Get(ctx, bad.Inner, "poison"); err != nil {
		t.Errorf("post-failure get via healthy model: %v", err)
	}
}

func TestGetErrorNotCached(t *testing.T) {
	inner := testModel(t, 16)
	var fail atomic.Bool
	fail.Store(true)
	bad := &model.FailingModel{
		Inner: inner,
		Match: func(s string) bool { return fail.Load() },
		Err:   errors.New("transient"),
	}
	s := New(Config{})
	ctx := context.Background()
	if _, err := s.Get(ctx, bad, "x"); err == nil {
		t.Fatal("expected error")
	}
	fail.Store(false)
	if _, err := s.Get(ctx, bad, "x"); err != nil {
		t.Errorf("error was cached: %v", err)
	}
}

// TestEvictionBound is the bounded-memory property test: however many
// distinct keys flow through, resident bytes never exceed the budget and
// every vector handed out is still correct.
func TestEvictionBound(t *testing.T) {
	m := testModel(t, 64)
	const budget = 64 << 10
	s := New(Config{Shards: 4, MaxBytes: budget})
	ctx := context.Background()
	r := rand.New(rand.NewSource(11))

	for round := 0; round < 40; round++ {
		batch := make([]string, 50)
		for i := range batch {
			batch[i] = fmt.Sprintf("key-%d", r.Intn(5000))
		}
		out, _, err := s.EmbedAll(ctx, m, batch, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !vecsEqual(out.Row(0), normalized(t, m, batch[0])) {
			t.Fatalf("round %d: wrong vector under eviction pressure", round)
		}
		if st := s.Stats(); st.Bytes > budget {
			t.Fatalf("round %d: resident %d bytes exceeds budget %d", round, st.Bytes, budget)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Error("expected evictions under a tight budget")
	}
	if st.Entries == 0 {
		t.Error("store emptied itself")
	}
}

// TestParallelMixedWorkload hammers the store from many goroutines with
// overlapping Get and EmbedAll traffic over a small vocabulary, under a
// byte budget so hits, misses, merges, and evictions all interleave.
// Run with -race; every result is checked against the direct embedding.
func TestParallelMixedWorkload(t *testing.T) {
	m := testModel(t, 48)
	s := New(Config{Shards: 8, MaxBytes: 128 << 10, ChunkSize: 8, Threads: 4})
	ctx := context.Background()

	// Reference embeddings computed sequentially up front.
	vocab := make([]string, 200)
	want := make(map[string][]float32, len(vocab))
	for i := range vocab {
		vocab[i] = fmt.Sprintf("tuple-%d", i)
		want[vocab[i]] = normalized(t, m, vocab[i])
	}

	const workers = 12
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for iter := 0; iter < 30; iter++ {
				if r.Intn(2) == 0 {
					in := vocab[r.Intn(len(vocab))]
					got, err := s.Get(ctx, m, in)
					if err != nil {
						errCh <- err
						return
					}
					if !vecsEqual(got, want[in]) {
						errCh <- fmt.Errorf("worker %d: wrong vector for %q", w, in)
						return
					}
				} else {
					batch := make([]string, 1+r.Intn(40))
					for i := range batch {
						batch[i] = vocab[r.Intn(len(vocab))]
					}
					out, _, err := s.EmbedAll(ctx, m, batch, BatchOptions{})
					if err != nil {
						errCh <- err
						return
					}
					for i, in := range batch {
						if !vecsEqual(out.Row(i), want[in]) {
							errCh <- fmt.Errorf("worker %d: wrong batch row for %q", w, in)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("workload did not mix hits and misses: %+v", st)
	}
	if st.Bytes > 128<<10 {
		t.Errorf("budget exceeded: %d", st.Bytes)
	}
}

func TestEmbedBatchMatchesSequential(t *testing.T) {
	m := testModel(t, 40)
	ctx := context.Background()
	inputs := words(rand.New(rand.NewSource(5)), 150)

	want := make([][]float32, len(inputs))
	for i, in := range inputs {
		want[i] = normalized(t, m, in)
	}
	for _, threads := range []int{0, 1, 3, 64} {
		out, err := EmbedBatch(ctx, m, inputs, BatchOptions{Threads: threads, ChunkSize: 7})
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		for i := range inputs {
			if !vecsEqual(out.Row(i), want[i]) {
				t.Fatalf("threads=%d: row %d differs", threads, i)
			}
		}
	}
}

func TestEmbedBatchCancellation(t *testing.T) {
	m := testModel(t, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EmbedBatch(ctx, m, []string{"a", "b", "c"}, BatchOptions{Threads: 2}); err == nil {
		t.Error("expected cancellation error")
	}
	out, err := EmbedBatch(context.Background(), m, nil, BatchOptions{})
	if err != nil || out.Rows() != 0 {
		t.Errorf("empty batch: %v %v", out, err)
	}
}

func TestCachingModelDelegatesToStore(t *testing.T) {
	counting := model.NewCountingModel(testModel(t, 32))
	s := New(Config{})
	cm := model.NewCachingModel(counting, s)

	v1, err := cm.Embed("shared-input")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := cm.Embed("shared-input")
	if err != nil {
		t.Fatal(err)
	}
	if !vecsEqual(v1, v2) {
		t.Error("caching model returned different vectors")
	}
	if counting.Calls() != 1 {
		t.Errorf("inner calls = %d, want 1", counting.Calls())
	}
	if cm.Dim() != 32 {
		t.Errorf("dim = %d", cm.Dim())
	}
	// The store and the wrapper share one cache namespace (keyed by the
	// inner model), so direct store traffic also hits.
	if _, err := s.Get(context.Background(), counting, "shared-input"); err != nil {
		t.Fatal(err)
	}
	if counting.Calls() != 1 {
		t.Errorf("store bypassed the shared entry: %d calls", counting.Calls())
	}
}

func TestResetAndLen(t *testing.T) {
	m := testModel(t, 16)
	s := New(Config{})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := s.Get(ctx, m, fmt.Sprintf("w%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 10 {
		t.Errorf("len = %d", s.Len())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Errorf("len after reset = %d", s.Len())
	}
	st := s.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Bytes != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
}

func TestContainsDoesNotPromoteOrCount(t *testing.T) {
	m := testModel(t, 16)
	s := New(Config{})
	ctx := context.Background()
	if s.Contains(m, "x") {
		t.Error("empty store claims containment")
	}
	if _, err := s.Get(ctx, m, "x"); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if !s.Contains(m, "x") {
		t.Error("store lost entry")
	}
	after := s.Stats()
	if before.Hits != after.Hits || before.Misses != after.Misses {
		t.Error("Contains mutated statistics")
	}
}

func TestFingerprintSeparatesConfigurations(t *testing.T) {
	s := New(Config{})
	ctx := context.Background()

	// Same dim, different seeds: Name() alone would collide.
	r1, _ := model.NewRandomEmbedder(16, 1)
	r2, _ := model.NewRandomEmbedder(16, 2)
	v1, _ := s.Get(ctx, r1, "token")
	v2, _ := s.Get(ctx, r2, "token")
	if vecsEqual(v1, v2) {
		t.Error("random embedders with different seeds shared a cache entry")
	}

	// Same dim, with and without synonym clusters.
	plain, _ := model.NewHashEmbedder(16)
	syn, _ := model.NewHashEmbedder(16, model.WithSynonyms(map[string][]string{"bbq": {"token", "barbecue"}}))
	p1, _ := s.Get(ctx, plain, "token")
	p2, _ := s.Get(ctx, syn, "token")
	if vecsEqual(p1, p2) {
		t.Error("hash embedders with different clusters shared a cache entry")
	}
	if got := s.Stats().Entries; got != 4 {
		t.Errorf("entries = %d, want 4 distinct", got)
	}
}

func TestWrapperFingerprintShares(t *testing.T) {
	inner := testModel(t, 16)
	counting := model.NewCountingModel(inner)
	s := New(Config{})
	ctx := context.Background()
	if _, err := s.Get(ctx, inner, "shared"); err != nil {
		t.Fatal(err)
	}
	// The counting wrapper embeds identically, so it must hit the entry
	// cached under the unwrapped model.
	if _, err := s.Get(ctx, counting, "shared"); err != nil {
		t.Fatal(err)
	}
	if calls := counting.Calls(); calls != 0 {
		t.Errorf("wrapper missed the shared entry: %d calls", calls)
	}
	if s.Stats().Entries != 1 {
		t.Errorf("entries = %d, want 1 shared", s.Stats().Entries)
	}
}

// TestMergedWaiterSurvivesOwnerCancellation: a query merged into another
// query's in-flight embed must not fail when the *owner* is cancelled —
// it retries with its own live context.
func TestMergedWaiterSurvivesOwnerCancellation(t *testing.T) {
	bm := &blockingModel{inner: testModel(t, 16), gate: make(chan struct{})}
	s := New(Config{})

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	aErr := make(chan error, 1)
	go func() {
		// Threads/Chunk 1: embeds "x" first (blocking on the gate), so the
		// "y" flight is still pending when ctxA is cancelled.
		_, _, err := s.EmbedAll(ctxA, bm, []string{"x", "y"}, BatchOptions{Threads: 1, ChunkSize: 1})
		aErr <- err
	}()
	for bm.started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	// B merges into A's pending "y" flight with a live context.
	bErr := make(chan error, 1)
	var bVec []float32
	go func() {
		v, err := s.Get(context.Background(), bm, "y")
		bVec = v
		bErr <- err
	}()
	for s.Stats().Merged == 0 {
		time.Sleep(time.Millisecond)
	}

	cancelA()
	close(bm.gate)

	if err := <-aErr; err == nil {
		t.Error("cancelled owner reported no error")
	}
	if err := <-bErr; err != nil {
		t.Fatalf("waiter inherited the owner's cancellation: %v", err)
	}
	if !vecsEqual(bVec, normalized(t, bm.inner, "y")) {
		t.Error("waiter got a wrong vector after retry")
	}
}

func TestEmbedAllThreadsOverride(t *testing.T) {
	// A store configured single-threaded embeds in parallel when the
	// caller (the executor honoring Options.Threads) asks for it.
	bm := &blockingModel{inner: testModel(t, 16), gate: make(chan struct{})}
	s := New(Config{Threads: 1})
	done := make(chan error, 1)
	go func() {
		_, _, err := s.EmbedAll(context.Background(), bm, []string{"a", "b", "c", "d"}, BatchOptions{Threads: 4, ChunkSize: 1})
		done <- err
	}()
	// With 4 workers and chunk size 1, all four embeds start concurrently.
	deadline := time.After(5 * time.Second)
	for bm.started.Load() < 4 {
		select {
		case <-deadline:
			t.Fatalf("only %d concurrent embeds; Threads override ignored", bm.started.Load())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(bm.gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestPutRangeModelEntries(t *testing.T) {
	s := New(Config{})
	m := testModel(t, 16)
	fp := Fingerprint(m)

	// Put is the loader path: no model, no stats, no hook.
	var hookCalls atomic.Int64
	s.SetOnInsert(func(fp, input string, vec []float32) { hookCalls.Add(1) })
	want := map[string][]float32{}
	for i := 0; i < 50; i++ {
		in := fmt.Sprintf("loaded-%d", i)
		v := normalized(t, m, in)
		s.Put(fp, in, v)
		want[in] = v
	}
	s.Put("other/8", "foreign", []float32{1, 0, 0})
	if got := s.Len(); got != 51 {
		t.Fatalf("Len = %d, want 51", got)
	}
	if hookCalls.Load() != 0 {
		t.Errorf("Put fired the insert hook %d times; the loader path must not re-persist", hookCalls.Load())
	}
	st := s.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.ModelCalls != 0 {
		t.Errorf("Put moved lookup stats: %+v", st)
	}

	// Loaded entries are served as cache hits with correct values.
	got, err := s.Get(context.Background(), m, "loaded-7")
	if err != nil {
		t.Fatal(err)
	}
	if !vecsEqual(got, want["loaded-7"]) {
		t.Error("Put entry served wrong vector")
	}
	if st := s.Stats(); st.Hits != 1 || st.ModelCalls != 0 {
		t.Errorf("loaded entry was not a pure hit: %+v", st)
	}

	// Range exports every entry exactly once, split back into (fp, input).
	seen := map[string]int{}
	s.Range(func(gotFP, input string, vec []float32) bool {
		if gotFP == fp {
			if !vecsEqual(vec, want[input]) {
				t.Errorf("Range vector mismatch for %q", input)
			}
		} else if gotFP != "other/8" || input != "foreign" {
			t.Errorf("Range surfaced unknown entry %q/%q", gotFP, input)
		}
		seen[gotFP+"\x00"+input]++
		return true
	})
	if len(seen) != 51 {
		t.Errorf("Range visited %d entries, want 51", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("Range visited %q %d times", k, n)
		}
	}

	// Early termination.
	visits := 0
	s.Range(func(string, string, []float32) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Errorf("Range ignored false return (%d visits)", visits)
	}

	// Per-model counts: the /stats surface.
	entries := s.ModelEntries()
	if entries[fp] != 50 || entries["other/8"] != 1 {
		t.Errorf("ModelEntries = %v", entries)
	}
}

func TestOnInsertHookObservesModelComputedEntries(t *testing.T) {
	s := New(Config{})
	m := testModel(t, 8)
	fp := Fingerprint(m)

	type rec struct {
		fp, input string
		vec       []float32
	}
	var mu sync.Mutex
	var got []rec
	s.SetOnInsert(func(fp, input string, vec []float32) {
		mu.Lock()
		got = append(got, rec{fp, input, vec})
		mu.Unlock()
	})

	if _, err := s.Get(context.Background(), m, "alpha"); err != nil {
		t.Fatal(err)
	}
	// A hit must not re-fire the hook.
	if _, err := s.Get(context.Background(), m, "alpha"); err != nil {
		t.Fatal(err)
	}
	// Batch inserts fire per distinct new input.
	if _, _, err := s.EmbedAll(context.Background(), m, []string{"beta", "alpha", "beta", "gamma"}, BatchOptions{}); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("hook fired %d times, want 3 (alpha, beta, gamma)", len(got))
	}
	inputs := map[string]bool{}
	for _, r := range got {
		if r.fp != fp {
			t.Errorf("hook fingerprint %q, want %q", r.fp, fp)
		}
		if !vecsEqual(r.vec, normalized(t, m, r.input)) {
			t.Errorf("hook vector for %q differs from the cached embedding", r.input)
		}
		inputs[r.input] = true
	}
	if !inputs["alpha"] || !inputs["beta"] || !inputs["gamma"] {
		t.Errorf("hook inputs = %v", inputs)
	}

	// Detach: no further callbacks.
	s.SetOnInsert(nil)
	if _, err := s.Get(context.Background(), m, "delta"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("hook fired after detach")
	}
}

module ejoin

go 1.24.0

package ejoin

import (
	"context"
	"fmt"
	"io"

	"ejoin/internal/core"
	"ejoin/internal/durable"
	"ejoin/internal/embstore"
	"ejoin/internal/hnsw"
	"ejoin/internal/ivf"
	"ejoin/internal/lsh"
	"ejoin/internal/model"
	"ejoin/internal/plan"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
	"ejoin/internal/vindex"
)

// SelectionMatch is one row selected by SelectStrings.
type SelectionMatch struct {
	// Row is the input offset.
	Row int
	// Value is the input string.
	Value string
	// Sim is the cosine similarity to the query.
	Sim float32
}

// SelectStrings is the E-selection operator σ_{E,µ,θ}: it returns the
// inputs whose semantic similarity to query is at least threshold — a
// semantic WHERE clause. Cost is |R|·(A+M+C) (one model call per input
// plus one for the query).
func SelectStrings(ctx context.Context, m Model, inputs []string, query string, threshold float32) ([]SelectionMatch, error) {
	res, err := core.ESelect(ctx, m, inputs, query, threshold, core.Options{Kernel: vec.DefaultKernel()})
	if err != nil {
		return nil, err
	}
	out := make([]SelectionMatch, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = SelectionMatch{Row: r, Value: inputs[r], Sim: res.Sims[i]}
	}
	return out, nil
}

// LoadIndex reads an HNSW index previously written with Index.Save.
// Index construction dominates probe cost, so persisting built indexes is
// how production deployments amortize it.
func LoadIndex(r io.Reader) (*Index, error) {
	return hnsw.Load(r)
}

// IndexSnapshotter is the durability contract an index family satisfies
// to round-trip through SaveVectorIndex/LoadVectorIndex: a kind tag plus
// versioned binary self-serialization. HNSW and IVF-Flat both implement
// it.
type IndexSnapshotter = vindex.Snapshotter

// SaveVectorIndex writes any snapshot-capable vector index as a
// checksummed, kind-tagged container, so LoadVectorIndex can restore it
// without knowing the index family in advance.
func SaveVectorIndex(w io.Writer, ix IndexSnapshotter) error {
	return durable.SaveIndex(w, ix)
}

// LoadVectorIndex reads a snapshot written by SaveVectorIndex, verifying
// its checksum and dispatching to the right decoder by kind. The restored
// index answers TopK identically to the one saved.
func LoadVectorIndex(r io.Reader) (VectorIndex, error) {
	return durable.LoadIndex(r)
}

// VectorIndex is the access-path abstraction both index types satisfy:
// anything assigned to TableRef.Index. HNSW probes are logarithmic with
// traversal-bound pre-filters; IVF scans nprobe partitions with filters
// applied before the distance computation.
type VectorIndex = vindex.Index

// IVFConfig holds IVF-Flat construction parameters.
type IVFConfig = ivf.Config

// IVFIndex is an inverted-file vector index (k-means partitions + list
// scans) — cheaper to build than HNSW, more comparisons per probe at
// equal recall.
type IVFIndex = ivf.Index

// BuildIVFIndex constructs an IVF-Flat index over the embeddings of the
// named column (VECTOR directly, TEXT through the model).
func BuildIVFIndex(ctx context.Context, t *Table, column string, m Model, cfg IVFConfig) (*IVFIndex, error) {
	em, err := columnEmbeddings(ctx, t, column, m)
	if err != nil {
		return nil, err
	}
	return ivf.Build(em, cfg)
}

// LSHParams configures the locality-sensitive-hashing approximate join.
type LSHParams = lsh.Params

// DefaultLSHParams suits unit-norm embeddings and thresholds around 0.7-0.9.
func DefaultLSHParams() LSHParams { return lsh.DefaultParams() }

// SemanticPred is a similarity predicate over a context-rich column:
// σ(sim(E_µ(Column), E_µ(Query)) >= Threshold).
type SemanticPred = plan.SemanticPred

// SemanticFilterResult is the output of FilterTable.
type SemanticFilterResult = plan.SemanticFilterResult

// FilterTable applies relational predicates and then a semantic predicate
// to a table — the declarative E-selection path. Relational predicates run
// first so the model embeds only surviving tuples.
func FilterTable(ctx context.Context, t *Table, m Model, preds []Pred, sem SemanticPred) (*SemanticFilterResult, error) {
	return plan.SemanticFilter(ctx, t, m, preds, sem, core.Options{Kernel: vec.DefaultKernel()})
}

// FilterTableWith is FilterTable with explicit physical options (kernel,
// threads), so deployments that configure a kernel are honored in
// semantic filters too.
func FilterTableWith(ctx context.Context, t *Table, m Model, preds []Pred, sem SemanticPred, opts JoinOptions) (*SemanticFilterResult, error) {
	return plan.SemanticFilter(ctx, t, m, preds, sem, opts)
}

// Ordering re-exports: ORDER BY and LIMIT over selections.
const (
	// Ascending sorts smallest first.
	Ascending = relational.Ascending
	// Descending sorts largest first.
	Descending = relational.Descending
)

// SortOrder is the direction of an ORDER BY.
type SortOrder = relational.SortOrder

// SortSelection reorders sel by the named column's values (stable).
func SortSelection(t *Table, sel Selection, column string, order SortOrder) (Selection, error) {
	return relational.SortSelection(t, sel, column, order)
}

// TopNBy is ORDER BY column LIMIT n over the whole table.
func TopNBy(t *Table, column string, order SortOrder, n int) (Selection, error) {
	return relational.TopNBy(t, column, order, n)
}

// ReadCSV parses CSV content (header row required, field names matching
// the schema) into a table.
func ReadCSV(r io.Reader, schema Schema) (*Table, error) {
	return relational.ReadCSV(r, schema)
}

// WriteCSV renders a table as CSV with a header row.
func WriteCSV(w io.Writer, t *Table) error {
	return relational.WriteCSV(w, t)
}

// EmbedStore is the shared, cross-query embedding store: a sharded,
// concurrency-safe cache of embeddings keyed by (model fingerprint, input)
// with single-flight deduplication, a batch scheduler that coalesces
// misses into chunked parallel model calls, and bounded-memory LRU
// eviction. One store per process turns the paper's per-query prefetch
// optimization into cross-query reuse: the second query over a corpus
// performs zero model calls for already-seen inputs.
type EmbedStore = embstore.Store

// EmbedStoreConfig tunes an EmbedStore (shards, byte budget, chunk size,
// scheduler threads). The zero value is a usable default.
type EmbedStoreConfig = embstore.Config

// EmbedStoreStats is the store's observability surface (hits, misses,
// merged in-flight calls, evictions, model calls, resident bytes).
type EmbedStoreStats = embstore.Stats

// NewEmbedStore builds a shared embedding store. Attach it to an Executor
// and Optimizer (see NewStoreExecutor / NewStoreOptimizer) or wrap a model
// with NewCachingModel.
func NewEmbedStore(cfg EmbedStoreConfig) *EmbedStore { return embstore.New(cfg) }

// NewCachingModel wraps inner so that every Embed is served through the
// shared store: repeated and concurrent embeddings of the same input cost
// one model call process-wide. Use it where an API takes a Model rather
// than an Executor.
func NewCachingModel(inner Model, store *EmbedStore) Model {
	return model.NewCachingModel(inner, store)
}

// NewStoreExecutor returns an executor whose Embed nodes evaluate through
// the shared store (pass nil for a store-less executor equivalent to
// &Executor{}).
func NewStoreExecutor(store *EmbedStore) *Executor {
	return &Executor{Options: core.Options{Kernel: vec.DefaultKernel()}, Store: store}
}

// NewStoreOptimizer returns an optimizer with default cost parameters
// whose access path selection is cache-aware: expected hit ratios sampled
// from the store discount the embedding cost term, so a warm cache can
// change the chosen physical strategy.
func NewStoreOptimizer(store *EmbedStore) *Optimizer {
	o := plan.NewOptimizer()
	o.Store = store
	return o
}

// ApproxJoinStrings is the LSH baseline join: candidate pairs come from
// SimHash band collisions and are verified exactly against the threshold.
// Faster than the exact join when matches are rare, at sub-1.0 recall —
// the trade-off the paper positions the exact tensor join against.
func ApproxJoinStrings(ctx context.Context, m Model, left, right []string, threshold float32, p LSHParams) ([]StringMatch, error) {
	lm, err := core.Embed(ctx, m, left)
	if err != nil {
		return nil, fmt.Errorf("ejoin: embedding left input: %w", err)
	}
	rm, err := core.Embed(ctx, m, right)
	if err != nil {
		return nil, fmt.Errorf("ejoin: embedding right input: %w", err)
	}
	j, err := lsh.NewJoiner(m.Dim(), p)
	if err != nil {
		return nil, err
	}
	matches, _, err := j.Join(ctx, lm, rm, threshold)
	if err != nil {
		return nil, err
	}
	return toStringMatches(left, right, &core.Result{Matches: matches}), nil
}

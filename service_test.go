package ejoin_test

import (
	"context"
	"testing"

	"ejoin"
)

// TestEngineFacade drives the serving layer through the public API: an
// engine with defaults, table registration, a sqlish query, and stats.
func TestEngineFacade(t *testing.T) {
	engine, err := ejoin.NewEngine(ejoin.EngineConfig{Dim: 32})
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := ejoin.NewTable(
		ejoin.Schema{{Name: "name", Type: ejoin.StringType}},
		[]ejoin.Column{ejoin.StringColumn{"barbecue", "database"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	feed, err := ejoin.NewTable(
		ejoin.Schema{{Name: "title", Type: ejoin.StringType}},
		[]ejoin.Column{ejoin.StringColumn{"barbecues", "databases", "giraffe"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.RegisterTable("catalog", catalog); err != nil {
		t.Fatal(err)
	}
	if err := engine.RegisterTable("feed", feed); err != nil {
		t.Fatal(err)
	}

	res, err := engine.Query(context.Background(), ejoin.QueryRequest{
		SQL: "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Errorf("matches = %d, want 2", len(res.Matches))
	}

	// Structured spec through the alias types.
	res, err = engine.Query(context.Background(), ejoin.QueryRequest{
		Join: &ejoin.JoinRequest{
			LeftTable: "catalog", LeftColumn: "name",
			RightTable: "feed", RightColumn: "title",
			Kind: "topk", K: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Errorf("topk matches = %d, want 2", len(res.Matches))
	}

	st := engine.Stats()
	if st.Queries != 2 || st.Tables != 2 {
		t.Errorf("stats: queries=%d tables=%d", st.Queries, st.Tables)
	}
	if st.Store.Entries == 0 {
		t.Error("store is empty after two queries")
	}
	infos := engine.Tables()
	if len(infos) != 2 {
		t.Errorf("tables = %+v", infos)
	}
}

// TestOpenEngineFacade drives the durable path through the public API:
// open on a data directory, ingest, query, close, reopen, and serve the
// repeated query from the recovered cache.
func TestOpenEngineFacade(t *testing.T) {
	dir := t.TempDir()
	open := func() *ejoin.Engine {
		engine, err := ejoin.OpenEngine(ejoin.EngineConfig{Dim: 32, DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return engine
	}

	engine := open()
	catalog, err := ejoin.NewTable(
		ejoin.Schema{{Name: "name", Type: ejoin.StringType}},
		[]ejoin.Column{ejoin.StringColumn{"barbecue", "database"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.RegisterTable("catalog", catalog); err != nil {
		t.Fatal(err)
	}
	if err := engine.RegisterTable("feed", catalog); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.name) >= 0.9"
	cold, err := engine.Query(context.Background(), ejoin.QueryRequest{SQL: q})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}

	engine2 := open()
	defer engine2.Close()
	warm, err := engine2.Query(context.Background(), ejoin.QueryRequest{SQL: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Matches) != len(cold.Matches) {
		t.Fatalf("warm matches %d, cold %d", len(warm.Matches), len(cold.Matches))
	}
	st := engine2.Stats()
	if st.Store.ModelCalls != 0 {
		t.Errorf("warm reopen cost %d model calls, want 0", st.Store.ModelCalls)
	}
	if st.Durable == nil || st.Durable.LoadedTables != 2 {
		t.Errorf("durable stats = %+v", st.Durable)
	}
}

// Package ejoin is a context-enhanced relational join engine: the Go
// reproduction of "Optimizing Context-Enhanced Relational Joins" (Sanca,
// Chatzakis, Ailamaki — ICDE 2024).
//
// The library joins relational tables on the *semantics* of context-rich
// columns (strings, documents, anything an embedding model can encode)
// instead of exact values. An embedding operator E_µ turns context-rich
// data into unit-norm vectors; the join matches pairs by cosine similarity
// (threshold or top-k); and a logical optimizer plus cost-based physical
// planner keep the whole pipeline declarative:
//
//   - relational predicates are pushed below the embedding operator, so
//     only surviving tuples are embedded;
//   - embeddings are prefetched once per tuple, never once per pair;
//   - the join runs as a cache-blocked tensor (matrix) kernel, a parallel
//     nested-loop join, or probes of an HNSW vector index — whichever the
//     cost model predicts is cheapest for the sizes, selectivities, and
//     condition at hand.
//
// # Quick start
//
//	m, _ := ejoin.NewHashModel(100)
//	matches, _ := ejoin.JoinStrings(ctx, m,
//	    []string{"barbecue", "database"},
//	    []string{"barbecues", "databases", "giraffe"},
//	    0.6)
//
// For table-level queries with relational predicates, build a Query and
// call Run; see the examples directory.
//
// # Cross-query embedding reuse
//
// Within one query the optimizer already prefetches embeddings once per
// tuple instead of once per pair. The shared EmbedStore extends that reuse
// across queries and across concurrent sessions: one store per process
// caches embeddings keyed by (model fingerprint, input) in sharded LRU
// segments, merges concurrent requests for the same input into a single
// in-flight model call, and coalesces cache misses into chunked parallel
// embed batches. Repeated queries over the same corpus perform zero model
// calls for already-seen inputs, and the optimizer discounts the embedding
// cost term by the store's expected hit ratio when choosing the physical
// strategy:
//
//	store := ejoin.NewEmbedStore(ejoin.EmbedStoreConfig{MaxBytes: 256 << 20})
//	exec := ejoin.NewStoreExecutor(store)
//	opt := ejoin.NewStoreOptimizer(store)
//	res, _, _ := ejoin.Run(ctx, q, exec, opt) // cold: embeds and caches
//	res, _, _ = ejoin.Run(ctx, q, exec, opt)  // warm: zero model calls
//	fmt.Println(store.Stats())                // hits, misses, merged, bytes
package ejoin

import (
	"ejoin/internal/core"
	"ejoin/internal/cost"
	"ejoin/internal/hnsw"
	"ejoin/internal/model"
	"ejoin/internal/plan"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Model is the embedding model µ: context-rich input -> vector.
	Model = model.Model
	// Table is a columnar relational table.
	Table = relational.Table
	// Schema describes a table's columns.
	Schema = relational.Schema
	// Field is one schema entry.
	Field = relational.Field
	// Pred is a relational predicate (column op value).
	Pred = relational.Pred
	// Selection is a vector of selected row indexes.
	Selection = relational.Selection

	// Query is a declarative hybrid vector-relational join query.
	Query = plan.Query
	// TableRef binds a table, its context-rich column, predicates, and an
	// optional vector index to one side of a query.
	TableRef = plan.TableRef
	// JoinSpec is the join condition (threshold or top-k).
	JoinSpec = plan.JoinSpec
	// ExecResult is the output of running a query.
	ExecResult = plan.ExecResult
	// Optimizer rewrites logical plans (pushdown, prefetch, reorder) and
	// selects physical strategies.
	Optimizer = plan.Optimizer
	// Executor runs optimized plans.
	Executor = plan.Executor
	// PlanNode is a logical plan operator.
	PlanNode = plan.Node
	// EJoinPlan is the join operator node at the root of a plan.
	EJoinPlan = plan.EJoin

	// Match is one join result: left/right row ids and similarity.
	Match = core.Match
	// JoinOptions tunes physical execution (kernel, threads, memory budget).
	JoinOptions = core.Options
	// JoinStats reports what an operator did (model calls, comparisons,
	// blocks, peak intermediate bytes).
	JoinStats = core.Stats

	// CostParams parametrizes the cost model.
	CostParams = cost.Params
	// Strategy is a physical join strategy.
	Strategy = cost.Strategy

	// IndexConfig holds HNSW construction parameters.
	IndexConfig = hnsw.Config
	// Index is an HNSW vector index.
	Index = hnsw.Index

	// Kernel selects scalar or SIMD-style compute kernels.
	Kernel = vec.Kernel
)

// Join kinds.
const (
	// ThresholdJoin matches pairs with similarity >= JoinSpec.Threshold.
	ThresholdJoin = plan.ThresholdJoin
	// TopKJoin matches each left tuple with its JoinSpec.K best matches.
	TopKJoin = plan.TopKJoin
)

// Physical strategies (see DESIGN.md for when each wins).
const (
	// StrategyNaiveNLJ embeds per compared pair (baseline only).
	StrategyNaiveNLJ = cost.StrategyNaiveNLJ
	// StrategyNLJ is the prefetched parallel nested-loop join.
	StrategyNLJ = cost.StrategyNLJ
	// StrategyTensor is the blocked-matrix formulation.
	StrategyTensor = cost.StrategyTensor
	// StrategyIndex probes an HNSW index.
	StrategyIndex = cost.StrategyIndex
)

// Compute kernels.
const (
	// KernelScalar is the portable kernel.
	KernelScalar = vec.KernelScalar
	// KernelSIMD is the unrolled (SIMD-style) kernel.
	KernelSIMD = vec.KernelSIMD
)

// Relational column types.
const (
	Int64Type   = relational.Int64
	Float64Type = relational.Float64
	StringType  = relational.String
	TimeType    = relational.Time
	BoolType    = relational.Bool
	VectorType  = relational.Vector
)

// Comparison operators for predicates.
const (
	EQ = relational.EQ
	NE = relational.NE
	LT = relational.LT
	LE = relational.LE
	GT = relational.GT
	GE = relational.GE
)

// NewHashModel returns the built-in FastText-like embedding model:
// deterministic subword n-gram hashing, robust to misspellings and
// out-of-vocabulary words. dim is the embedding dimensionality (the paper
// uses 100).
func NewHashModel(dim int) (Model, error) {
	return model.NewHashEmbedder(dim)
}

// NewHashModelWithSynonyms returns the hash model extended with synonym
// clusters (cluster label -> member words): members embed near each other
// even without shared subwords, standing in for learned semantics.
func NewHashModelWithSynonyms(dim int, clusters map[string][]string) (Model, error) {
	return model.NewHashEmbedder(dim, model.WithSynonyms(clusters))
}

// NewRandomModel returns a model mapping each distinct input to an
// independent pseudo-random unit vector (useful for synthetic workloads).
func NewRandomModel(dim int, seed uint64) (Model, error) {
	return model.NewRandomEmbedder(dim, seed)
}

// NewTable builds a columnar table; see the relational column constructors
// Int64Column, StringColumn, TimeColumn, Float64Column, BoolColumn and
// NewVectorColumn.
func NewTable(schema Schema, cols []relational.Column) (*Table, error) {
	return relational.NewTable(schema, cols)
}

// Column constructors, re-exported for table building.
type (
	// Int64Column stores int64 values.
	Int64Column = relational.Int64Column
	// Float64Column stores float64 values.
	Float64Column = relational.Float64Column
	// StringColumn stores strings.
	StringColumn = relational.StringColumn
	// TimeColumn stores timestamps.
	TimeColumn = relational.TimeColumn
	// BoolColumn stores booleans.
	BoolColumn = relational.BoolColumn
	// VectorColumn stores fixed-dimension embeddings.
	VectorColumn = relational.VectorColumn
	// Column is any table column.
	Column = relational.Column
)

// NewVectorColumn builds an embedding column from row vectors.
func NewVectorColumn(rows [][]float32) (*VectorColumn, error) {
	return relational.NewVectorColumn(rows)
}

// IndexConfigHi mirrors the paper's higher-recall HNSW configuration
// (M=64, efConstruction=512).
func IndexConfigHi() IndexConfig { return hnsw.ConfigHi() }

// IndexConfigLo mirrors the paper's lower-recall, lower-latency HNSW
// configuration (M=32, efConstruction=256).
func IndexConfigLo() IndexConfig { return hnsw.ConfigLo() }

// DefaultCostParams returns the default cost-model coefficients.
func DefaultCostParams() CostParams { return cost.DefaultParams() }

// CalibrateCostParams measures the host's relative access/model/compare
// costs for the given model and dimensionality.
func CalibrateCostParams(m Model, dim int) (CostParams, error) {
	return cost.Calibrate(m, dim)
}

// NewOptimizer returns an optimizer with default cost parameters.
func NewOptimizer() *Optimizer { return plan.NewOptimizer() }

// ExplainPlan renders a plan as an indented tree.
func ExplainPlan(n PlanNode) string { return plan.ExplainTree(n) }

// MaterializeResult builds the joined output table (left columns prefixed
// l_, right columns r_, plus a similarity column).
func MaterializeResult(q Query, res *ExecResult) (*Table, error) {
	return plan.MaterializeResult(q, res)
}

package ejoin

import (
	"ejoin/internal/service"
)

// The serving layer: a long-lived Engine turns the library into a
// concurrent query service — named tables, one shared embedding store, a
// prepared-plan cache, admission control over estimated intermediate
// bytes, per-query deadlines, and aggregated statistics. cmd/ejserve
// exposes the same Engine over HTTP/JSON.
//
//	engine, _ := ejoin.NewEngine(ejoin.EngineConfig{})
//	engine.RegisterTable("catalog", catalogTable)
//	engine.RegisterTable("feed", feedTable)
//	res, _ := engine.Query(ctx, ejoin.QueryRequest{
//	    SQL: "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.6",
//	})
//	fmt.Println(res.Strategy, len(res.Matches), engine.Stats().Store.HitRatio())
type (
	// Engine is a concurrency-safe query engine: one per process, shared
	// by every session.
	Engine = service.Engine
	// EngineConfig tunes an Engine (model, store budget, admission
	// limits, deadlines, plan cache size).
	EngineConfig = service.Config
	// QueryRequest is one query: sqlish text or a structured join spec.
	QueryRequest = service.QueryRequest
	// JoinRequest is the structured query shape.
	JoinRequest = service.JoinRequest
	// QueryResult is the outcome of one served query.
	QueryResult = service.QueryResult
	// ServerStats aggregates request, admission, plan-cache, executor,
	// and store statistics.
	ServerStats = service.ServerStats
	// TableInfo describes one catalog entry.
	TableInfo = service.TableInfo
	// SnapshotInfo reports what one Engine.Snapshot call did.
	SnapshotInfo = service.SnapshotInfo
	// DurableStats describes a durable engine's persistence layer.
	DurableStats = service.DurableStats
	// MutationResult reports one applied upsert or delete batch
	// (Engine.UpsertRows / Engine.DeleteRows).
	MutationResult = service.MutationResult
	// MutationStats describes the live-update arm: WAL, applied batches,
	// tombstones, replay, and index re-clustering.
	MutationStats = service.MutationStats
)

// ErrTableExists reports a create-mode CSV ingest against an existing
// table name (Engine.RegisterCSV with replace false).
var ErrTableExists = service.ErrTableExists

// NewEngine builds a memory-only serving engine from cfg (zero value =
// defaults: hash model, 256 MiB store, GOMAXPROCS slots, 1 GiB admission
// budget).
func NewEngine(cfg EngineConfig) (*Engine, error) {
	return service.NewEngine(cfg)
}

// OpenEngine builds a serving engine backed by cfg.DataDir: ingested
// tables and every computed embedding persist across restarts, so a
// rebooted process serves its first repeated query with zero model calls
// and restored indexes instead of a cold cache. Recovery is crash-safe —
// torn log tails are truncated and checksum-failing records skipped, not
// served. Close the engine to flush. An empty DataDir degrades to
// NewEngine semantics.
//
//	engine, _ := ejoin.OpenEngine(ejoin.EngineConfig{DataDir: "/var/lib/ejoin"})
//	defer engine.Close()
func OpenEngine(cfg EngineConfig) (*Engine, error) {
	return service.Open(cfg)
}

// IsBadRequest reports whether an Engine.Query error was caused by the
// request itself (parse, bind, spec validation) rather than a
// server-side failure — the 400-versus-500 split for serving layers.
func IsBadRequest(err error) bool { return service.IsBadRequest(err) }

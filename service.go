package ejoin

import (
	"ejoin/internal/service"
)

// The serving layer: a long-lived Engine turns the library into a
// concurrent query service — named tables, one shared embedding store, a
// prepared-plan cache, admission control over estimated intermediate
// bytes, per-query deadlines, and aggregated statistics. cmd/ejserve
// exposes the same Engine over HTTP/JSON.
//
//	engine, _ := ejoin.NewEngine(ejoin.EngineConfig{})
//	engine.RegisterTable("catalog", catalogTable)
//	engine.RegisterTable("feed", feedTable)
//	res, _ := engine.Query(ctx, ejoin.QueryRequest{
//	    SQL: "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.6",
//	})
//	fmt.Println(res.Strategy, len(res.Matches), engine.Stats().Store.HitRatio())
type (
	// Engine is a concurrency-safe query engine: one per process, shared
	// by every session.
	Engine = service.Engine
	// EngineConfig tunes an Engine (model, store budget, admission
	// limits, deadlines, plan cache size).
	EngineConfig = service.Config
	// QueryRequest is one query: sqlish text or a structured join spec.
	QueryRequest = service.QueryRequest
	// JoinRequest is the structured query shape.
	JoinRequest = service.JoinRequest
	// QueryResult is the outcome of one served query.
	QueryResult = service.QueryResult
	// ServerStats aggregates request, admission, plan-cache, executor,
	// and store statistics.
	ServerStats = service.ServerStats
	// TableInfo describes one catalog entry.
	TableInfo = service.TableInfo
)

// NewEngine builds a serving engine from cfg (zero value = defaults:
// hash model, 256 MiB store, GOMAXPROCS slots, 1 GiB admission budget).
func NewEngine(cfg EngineConfig) (*Engine, error) {
	return service.NewEngine(cfg)
}

// IsBadRequest reports whether an Engine.Query error was caused by the
// request itself (parse, bind, spec validation) rather than a
// server-side failure — the 400-versus-500 split for serving layers.
func IsBadRequest(err error) bool { return service.IsBadRequest(err) }

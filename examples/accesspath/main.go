// Access path selection: when does a vector index beat an exhaustive
// scan? A miniature of the paper's Figures 15-17 experiment, showing how
// relational selectivity moves the crossover, and what the cost model
// recommends at each point.
//
// Run with:
//
//	go run ./examples/accesspath
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"ejoin"
)

const (
	dim      = 32
	nProbe   = 100
	nIndexed = 8000
	attrCard = 1000
)

func main() {
	rng := rand.New(rand.NewSource(42))
	probeTable := vectorTable(rng, nProbe, nil)
	attr := make(ejoin.Int64Column, nIndexed)
	for i := range attr {
		attr[i] = rng.Int63n(attrCard)
	}
	indexedTable := vectorTable(rng, nIndexed, attr)

	ctx := context.Background()
	idx, err := ejoin.BuildIndex(ctx, indexedTable, "emb", nil, ejoin.IndexConfig{
		M: 16, EfConstruction: 128, EfSearch: 64, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	params := ejoin.DefaultCostParams()
	fmt.Printf("%-14s %-12s %-12s %-22s\n", "selectivity", "scan [ms]", "index [ms]", "cost model picks")
	for _, selPct := range []int64{5, 25, 50, 100} {
		pred := ejoin.Pred{Column: "attr", Op: ejoin.LT, Value: selPct * attrCard / 100}

		scanMs, err := run(ctx, probeTable, indexedTable, nil, pred, ejoin.StrategyTensor)
		if err != nil {
			log.Fatal(err)
		}
		idxMs, err := run(ctx, probeTable, indexedTable, idx, pred, ejoin.StrategyIndex)
		if err != nil {
			log.Fatal(err)
		}

		choice := params.ChooseJoinStrategy(nProbe, nIndexed,
			1.0, float64(selPct)/100, 1, true)
		fmt.Printf("%-14s %-12.1f %-12.1f %-22v\n",
			fmt.Sprintf("%d%%", selPct), scanMs, idxMs, choice.Strategy)
	}
	fmt.Printf("\nAt |S|=%d the scan wins everywhere — probes cost as much as scanning\n", nIndexed)
	fmt.Println("hundreds of thousands of tuples, and there aren't that many. The cost")
	fmt.Println("model agrees (picks TensorJoin above). At the paper's scale (10k x 1M)")
	fmt.Println("the same model reproduces the Figure 15 crossover:")
	fmt.Printf("\n%-14s %-22s\n", "selectivity", "cost model picks (10k x 1M, top-1)")
	for _, selPct := range []int64{5, 25, 50, 100} {
		choice := params.ChooseJoinStrategy(10_000, 1_000_000, 1.0, float64(selPct)/100, 1, true)
		fmt.Printf("%-14s %-22v\n", fmt.Sprintf("%d%%", selPct), choice.Strategy)
	}
}

func run(ctx context.Context, probe, indexed *ejoin.Table, idx *ejoin.Index, pred ejoin.Pred, strategy ejoin.Strategy) (float64, error) {
	q := ejoin.Query{
		Left: ejoin.TableRef{Name: "probe", Table: probe, VectorColumn: "emb"},
		Right: ejoin.TableRef{
			Name: "indexed", Table: indexed, VectorColumn: "emb",
			Predicates: []ejoin.Pred{pred},
			Index:      idx,
		},
		Join: ejoin.JoinSpec{Kind: ejoin.TopKJoin, K: 1, Threshold: -2},
	}
	opt := ejoin.NewOptimizer()
	opt.ForceStrategy = &strategy
	start := time.Now()
	if _, _, err := ejoin.Run(ctx, q, nil, opt); err != nil {
		return 0, err
	}
	return float64(time.Since(start).Microseconds()) / 1000, nil
}

func vectorTable(rng *rand.Rand, n int, attr ejoin.Int64Column) *ejoin.Table {
	rows := make([][]float32, n)
	for i := range rows {
		v := make([]float32, dim)
		var norm float64
		for j := range v {
			v[j] = float32(rng.NormFloat64())
			norm += float64(v[j]) * float64(v[j])
		}
		rows[i] = v
	}
	vc, err := ejoin.NewVectorColumn(rows)
	if err != nil {
		log.Fatal(err)
	}
	schema := ejoin.Schema{{Name: "emb", Type: ejoin.VectorType}}
	cols := []ejoin.Column{vc}
	if attr != nil {
		schema = append(schema, ejoin.Field{Name: "attr", Type: ejoin.Int64Type})
		cols = append(cols, attr)
	}
	t, err := ejoin.NewTable(schema, cols)
	if err != nil {
		log.Fatal(err)
	}
	return t
}

// Semantic search service: batched retrieval over a persisted index —
// the paper's observation that "batching many search queries would be
// equivalent to a join operation for better use of the available
// parallelism" (Section II-A3), as a retrieval-augmented-generation style
// pipeline: documents are embedded and indexed once, saved to disk, and
// query batches join against the loaded index.
//
// Run with:
//
//	go run ./examples/semanticsearch
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"ejoin"
)

func main() {
	ctx := context.Background()

	// Document corpus with semantic clusters (the knowledge base).
	docs := []string{
		"postgres transaction tuning",
		"postgresql index maintenance",
		"mysql replication setup",
		"grilling barbecue recipes",
		"barbecues for the summer",
		"clothing size guide",
		"dresses and garments catalog",
		"mountain hiking trails",
		"river kayaking guide",
		"quantum computing primer",
	}
	m, err := ejoin.NewHashModelWithSynonyms(100, map[string][]string{
		"db":    {"postgres", "postgresql", "mysql", "database"},
		"grill": {"grilling", "barbecue", "barbecues", "bbq", "cooking", "outdoors"},
		"wear":  {"clothing", "dresses", "garments", "clothes"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Offline phase: embed the corpus, attach the vector column, build the
	// index, and persist it (construction dominates probe cost).
	corpus, err := ejoin.NewTable(
		ejoin.Schema{{Name: "doc", Type: ejoin.StringType}},
		[]ejoin.Column{ejoin.StringColumn(docs)},
	)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err = ejoin.EmbedColumn(ctx, corpus, "doc", "emb", m)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := ejoin.BuildIndex(ctx, corpus, "emb", nil, ejoin.IndexConfig{
		M: 8, EfConstruction: 64, EfSearch: 32, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	var stored bytes.Buffer
	if err := idx.Save(&stored); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d documents (%d bytes on disk)\n\n", idx.Len(), stored.Len())

	// Online phase: load the index and serve a query BATCH as one join.
	loaded, err := ejoin.LoadIndex(&stored)
	if err != nil {
		log.Fatal(err)
	}
	queries := []string{"database administration", "bbq ideas", "what clothes to buy"}
	queryTable, err := ejoin.NewTable(
		ejoin.Schema{{Name: "q", Type: ejoin.StringType}},
		[]ejoin.Column{ejoin.StringColumn(queries)},
	)
	if err != nil {
		log.Fatal(err)
	}

	q := ejoin.Query{
		Left:  ejoin.TableRef{Name: "queries", Table: queryTable, TextColumn: "q"},
		Right: ejoin.TableRef{Name: "corpus", Table: corpus, VectorColumn: "emb", Index: loaded},
		Model: m,
		Join:  ejoin.JoinSpec{Kind: ejoin.TopKJoin, K: 2, Threshold: -2},
	}
	strategy := ejoin.StrategyIndex
	opt := ejoin.NewOptimizer()
	opt.ForceStrategy = &strategy
	res, _, err := ejoin.Run(ctx, q, nil, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("batched retrieval (top-2 per query, one join):")
	for _, match := range res.Matches {
		fmt.Printf("  %-28q -> %-34q %.3f\n", queries[match.Left], docs[match.Right], match.Sim)
	}

	// Semantic WHERE: filter the corpus by similarity to a topic.
	hits, err := ejoin.SelectStrings(ctx, m, docs, "cooking outdoors", 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nσ_E(corpus, \"cooking outdoors\", τ=0.3):")
	for _, h := range hits {
		fmt.Printf("  row %d: %-34q %.3f\n", h.Row, h.Value, h.Sim)
	}
}

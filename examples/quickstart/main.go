// Quickstart: join two lists of strings on semantic similarity.
//
// The embedding model handles context (misspellings, plural forms, word
// variants); the join only sees vectors and a threshold. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"ejoin"
)

func main() {
	// 100-dimensional FastText-like model: subword n-gram hashing makes
	// misspellings and inflections land near their source word.
	m, err := ejoin.NewHashModel(100)
	if err != nil {
		log.Fatal(err)
	}

	catalog := []string{"barbecue", "database", "clothes", "mountain"}
	feed := []string{"barbecues", "barbicue", "databases", "clothing", "giraffe"}

	matches, err := ejoin.JoinStrings(context.Background(), m, catalog, feed, 0.35)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d semantic matches at threshold 0.35:\n", len(matches))
	for _, match := range matches {
		fmt.Printf("  %-10s ~ %-10s (similarity %.3f)\n", match.Left, match.Right, match.Sim)
	}

	// Top-k form: the k best matches per left string, no threshold needed.
	top, err := ejoin.TopKStrings(context.Background(), m, []string{"clothes"}, feed, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-2 matches for \"clothes\":")
	for _, match := range top {
		fmt.Printf("  %-10s (similarity %.3f)\n", match.Right, match.Sim)
	}
}

// Data cleaning / integration: join a clean product catalog against a
// dirty feed (misspellings, inflections) with a relational date filter —
// the paper's motivating hybrid query (Figure 5).
//
// Demonstrates the full declarative path: naive plan -> optimizer
// (predicate pushdown below E_µ, embedding prefetch, strategy selection)
// -> execution -> materialized result table. Run with:
//
//	go run ./examples/datacleaning
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ejoin"
)

func main() {
	catalog, feed := buildTables()

	m, err := ejoin.NewHashModel(100)
	if err != nil {
		log.Fatal(err)
	}

	// Declarative query: join product names against feed titles by
	// semantics, but only feed entries ingested after Feb 10 qualify.
	cutoff := time.Date(2023, 2, 10, 0, 0, 0, 0, time.UTC)
	q := ejoin.Query{
		Left: ejoin.TableRef{Name: "catalog", Table: catalog, TextColumn: "name"},
		Right: ejoin.TableRef{
			Name: "feed", Table: feed, TextColumn: "title",
			Predicates: []ejoin.Pred{{Column: "ingested", Op: ejoin.GT, Value: cutoff}},
		},
		Model: m,
		Join:  ejoin.JoinSpec{Kind: ejoin.ThresholdJoin, Threshold: 0.55},
	}

	ctx := context.Background()
	res, plan, err := ejoin.Run(ctx, q, nil, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("optimized plan (filter pushed below the embedding, prefetch on):")
	fmt.Println(ejoin.ExplainPlan(plan))
	fmt.Printf("model calls: %d (naive per-pair plan would need %d)\n",
		res.Stats.ModelCalls, 2*catalog.NumRows()*feed.NumRows())
	fmt.Printf("surviving feed rows after date filter: %d of %d\n\n",
		len(res.RightRows), feed.NumRows())

	out, err := ejoin.MaterializeResult(q, res)
	if err != nil {
		log.Fatal(err)
	}
	names, _ := out.Strings("l_name")
	titles, _ := out.Strings("r_title")
	sims, _ := out.Floats("similarity")
	fmt.Println("integrated records:")
	for i := 0; i < out.NumRows(); i++ {
		fmt.Printf("  %-22s ~ %-24s %.3f\n", names[i], titles[i], sims[i])
	}
}

func buildTables() (catalog, feed *ejoin.Table) {
	day := func(month, d int) time.Time {
		return time.Date(2023, time.Month(month), d, 0, 0, 0, 0, time.UTC)
	}
	catalog, err := ejoin.NewTable(
		ejoin.Schema{
			{Name: "sku", Type: ejoin.Int64Type},
			{Name: "name", Type: ejoin.StringType},
		},
		[]ejoin.Column{
			ejoin.Int64Column{101, 102, 103, 104},
			ejoin.StringColumn{"barbecue grill", "cotton clothes", "vector database", "trail shoes"},
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	feed, err = ejoin.NewTable(
		ejoin.Schema{
			{Name: "title", Type: ejoin.StringType},
			{Name: "ingested", Type: ejoin.TimeType},
		},
		[]ejoin.Column{
			ejoin.StringColumn{
				"barbeque grills",   // misspelled + plural, fresh
				"cotton clothing",   // inflection, fresh
				"vector databases",  // plural, STALE (filtered by date)
				"trail shoe",        // singular, fresh
				"mountain painting", // unrelated, fresh
			},
			ejoin.TimeColumn{day(3, 1), day(2, 20), day(1, 5), day(2, 15), day(3, 2)},
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	return catalog, feed
}

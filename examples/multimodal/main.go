// Multi-modal near-duplicate detection: find incoming "images" that
// near-duplicate a reference database — the paper's misinformation-
// detection / document-tagging scenario (Section II-A3).
//
// Images stand in as precomputed embedding vectors (any image model that
// emits vectors plugs in the same way — the engine only sees tensors).
// Demonstrates vector columns, top-k joins, and the scan-vs-index choice.
// Run with:
//
//	go run ./examples/multimodal
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"ejoin"
)

const dim = 64

func main() {
	rng := rand.New(rand.NewSource(7))

	// Reference database: 2000 known images (as embeddings).
	reference := randomVectors(rng, 2000)
	refTable := vectorTable(reference)

	// Incoming feed: 30 fresh images plus 10 near-duplicates of known ones
	// (re-encoded, cropped, recompressed — modeled as small perturbations).
	feed := randomVectors(rng, 30)
	dupOf := make(map[int]int) // feed row -> reference row
	for i := 0; i < 10; i++ {
		src := rng.Intn(len(reference))
		feed = append(feed, perturb(rng, reference[src], 0.03))
		dupOf[len(feed)-1] = src
	}
	feedTable := vectorTable(feed)

	ctx := context.Background()

	// Index the reference set once (it is large and reused per batch).
	idx, err := ejoin.BuildIndex(ctx, refTable, "emb", nil, ejoin.IndexConfig{
		M: 16, EfConstruction: 128, EfSearch: 64, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	q := ejoin.Query{
		Left:  ejoin.TableRef{Name: "feed", Table: feedTable, VectorColumn: "emb"},
		Right: ejoin.TableRef{Name: "reference", Table: refTable, VectorColumn: "emb", Index: idx},
		Join:  ejoin.JoinSpec{Kind: ejoin.TopKJoin, K: 1, Threshold: 0.9},
	}

	// Force the index strategy: one probe per feed item beats scanning the
	// whole reference set for this shape.
	strategy := ejoin.StrategyIndex
	opt := ejoin.NewOptimizer()
	opt.ForceStrategy = &strategy
	res, _, err := ejoin.Run(ctx, q, nil, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("flagged %d near-duplicates among %d incoming images:\n", len(res.Matches), feedTable.NumRows())
	correct := 0
	for _, m := range res.Matches {
		src, known := dupOf[m.Left]
		status := "FALSE POSITIVE"
		if known && src == m.Right {
			status = "correct"
			correct++
		}
		fmt.Printf("  feed #%d ~ reference #%d (similarity %.3f) [%s]\n", m.Left, m.Right, m.Sim, status)
	}
	fmt.Printf("\n%d/%d planted duplicates recovered; %d comparisons via index probes (exhaustive scan would need %d).\n",
		correct, len(dupOf), res.Stats.Comparisons, feedTable.NumRows()*refTable.NumRows())
}

// randomVectors draws unit vectors uniformly on the sphere.
func randomVectors(rng *rand.Rand, n int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		out[i] = normalize(v)
	}
	return out
}

// perturb returns a noisy copy: the near-duplicate transformation.
func perturb(rng *rand.Rand, v []float32, noise float64) []float32 {
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = x + float32(rng.NormFloat64()*noise)
	}
	return normalize(out)
}

func normalize(v []float32) []float32 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	n := float32(math.Sqrt(s))
	if n == 0 {
		return v
	}
	for i := range v {
		v[i] /= n
	}
	return v
}

func vectorTable(rows [][]float32) *ejoin.Table {
	vc, err := ejoin.NewVectorColumn(rows)
	if err != nil {
		log.Fatal(err)
	}
	ids := make(ejoin.Int64Column, len(rows))
	for i := range ids {
		ids[i] = int64(i)
	}
	t, err := ejoin.NewTable(
		ejoin.Schema{
			{Name: "id", Type: ejoin.Int64Type},
			{Name: "emb", Type: ejoin.VectorType},
		},
		[]ejoin.Column{ids, vc},
	)
	if err != nil {
		log.Fatal(err)
	}
	return t
}

package ejoin

import (
	"bytes"
	"context"
	"testing"
)

func TestSelectStrings(t *testing.T) {
	m, err := NewHashModel(64)
	if err != nil {
		t.Fatal(err)
	}
	docs := []string{"barbecues", "databases", "barbicue", "giraffe"}
	hits, err := SelectStrings(context.Background(), m, docs, "barbecue", 0.35)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, h := range hits {
		got[h.Value] = true
		if h.Sim < 0.35 {
			t.Errorf("below threshold: %+v", h)
		}
		if docs[h.Row] != h.Value {
			t.Errorf("row/value misaligned: %+v", h)
		}
	}
	if !got["barbecues"] || !got["barbicue"] {
		t.Errorf("expected barbecue variants, got %v", got)
	}
	if got["giraffe"] {
		t.Error("giraffe selected")
	}
	if _, err := SelectStrings(context.Background(), m, docs, "", 0.5); err == nil {
		t.Error("expected error for empty query")
	}
}

func TestIndexSaveLoadPublicAPI(t *testing.T) {
	m, _ := NewHashModel(32)
	ctx := context.Background()
	tbl, err := NewTable(
		Schema{{Name: "w", Type: StringType}},
		[]Column{StringColumn{"alpha", "beta", "gamma", "delta"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildIndex(ctx, tbl, "w", m, IndexConfig{M: 4, EfConstruction: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 4 {
		t.Errorf("loaded len = %d", loaded.Len())
	}
	if _, err := LoadIndex(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("expected error for garbage input")
	}
}

func TestApproxJoinStrings(t *testing.T) {
	m, _ := NewHashModel(64)
	ctx := context.Background()
	left := []string{"barbecue", "database", "mountain"}
	right := []string{"barbecues", "databases", "rivers"}

	exact, err := JoinStrings(ctx, m, left, right, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ApproxJoinStrings(ctx, m, left, right, 0.6, LSHParams{Bands: 32, BitsPerBand: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With aggressive banding, recall on these near-duplicates is total.
	if len(approx) != len(exact) {
		t.Errorf("approx %d vs exact %d matches", len(approx), len(exact))
	}
	for _, a := range approx {
		if a.Sim < 0.6 {
			t.Errorf("below threshold: %+v", a)
		}
	}
	// Parameter validation propagates.
	if _, err := ApproxJoinStrings(ctx, m, left, right, 0.6, LSHParams{Bands: 0, BitsPerBand: 4}); err == nil {
		t.Error("expected params error")
	}
	if _, err := ApproxJoinStrings(ctx, m, []string{""}, right, 0.6, DefaultLSHParams()); err == nil {
		t.Error("expected embed error")
	}
	if _, err := ApproxJoinStrings(ctx, m, left, []string{""}, 0.6, DefaultLSHParams()); err == nil {
		t.Error("expected embed error")
	}
}

func TestDefaultLSHParams(t *testing.T) {
	if err := DefaultLSHParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVectorIndexSnapshotPublicAPI(t *testing.T) {
	m, _ := NewHashModel(32)
	ctx := context.Background()
	tbl, err := NewTable(
		Schema{{Name: "w", Type: StringType}},
		[]Column{StringColumn{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	hidx, err := BuildIndex(ctx, tbl, "w", m, IndexConfig{M: 4, EfConstruction: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	iidx, err := BuildIVFIndex(ctx, tbl, "w", m, IVFConfig{NLists: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q, err := m.Embed("beta")
	if err != nil {
		t.Fatal(err)
	}
	// Either index family round-trips through the kind-tagged container,
	// restoring identical TopK answers.
	for _, ix := range []IndexSnapshotter{hidx, iidx} {
		var buf bytes.Buffer
		if err := SaveVectorIndex(&buf, ix); err != nil {
			t.Fatal(err)
		}
		restored, err := LoadVectorIndex(&buf)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ix.TopK(q, 3, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.TopK(q, 3, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d hits, want %d", ix.Kind(), len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s hit %d: %+v vs %+v", ix.Kind(), i, got[i], want[i])
			}
		}
	}
	if _, err := LoadVectorIndex(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("expected error for garbage snapshot")
	}
}

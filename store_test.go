package ejoin_test

import (
	"context"
	"testing"

	"ejoin"
)

// TestPublicStoreAPI exercises the exported embedding-store surface: build
// a store, run the same query twice through a store-backed executor and
// optimizer, and watch the model fall off the warm path.
func TestPublicStoreAPI(t *testing.T) {
	inner, err := ejoin.NewHashModel(48)
	if err != nil {
		t.Fatal(err)
	}
	store := ejoin.NewEmbedStore(ejoin.EmbedStoreConfig{MaxBytes: 8 << 20})
	exec := ejoin.NewStoreExecutor(store)
	opt := ejoin.NewStoreOptimizer(store)

	mkTable := func(vals []string) *ejoin.Table {
		tbl, err := ejoin.NewTable(
			ejoin.Schema{{Name: "name", Type: ejoin.StringType}},
			[]ejoin.Column{ejoin.StringColumn(vals)},
		)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	q := ejoin.Query{
		Left:  ejoin.TableRef{Name: "L", Table: mkTable([]string{"barbecue", "database"}), TextColumn: "name"},
		Right: ejoin.TableRef{Name: "R", Table: mkTable([]string{"barbecues", "databases", "giraffe"}), TextColumn: "name"},
		Model: inner,
		Join:  ejoin.JoinSpec{Kind: ejoin.ThresholdJoin, Threshold: 0.5},
	}
	ctx := context.Background()

	cold, _, err := ejoin.Run(ctx, q, exec, opt)
	if err != nil {
		t.Fatal(err)
	}
	warm, _, err := ejoin.Run(ctx, q, exec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.ModelCalls != 0 {
		t.Errorf("warm run reported %d model calls, want 0", warm.Stats.ModelCalls)
	}
	if len(cold.Matches) != len(warm.Matches) {
		t.Errorf("matches differ: cold %d, warm %d", len(cold.Matches), len(warm.Matches))
	}
	st := store.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Entries == 0 {
		t.Errorf("store stats look wrong: %+v", st)
	}

	// The model-shaped view shares the same cache: wrapping the same inner
	// model keeps everything warm.
	cm := ejoin.NewCachingModel(inner, store)
	before := store.Stats().ModelCalls
	if _, err := cm.Embed("barbecue"); err != nil {
		t.Fatal(err)
	}
	if after := store.Stats().ModelCalls; after != before {
		t.Errorf("caching model re-embedded a cached input (%d -> %d calls)", before, after)
	}
}

package ejoin

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"
)

func TestFilterTablePublicAPI(t *testing.T) {
	q := queryFixture(t)
	res, err := FilterTable(context.Background(), q.Left.Table, q.Model,
		[]Pred{}, SemanticPred{Column: "word", Query: "barbecues", Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	words, _ := q.Left.Table.Strings("word")
	if len(res.Rows) != 1 || words[res.Rows[0]] != "barbecue" {
		t.Fatalf("rows = %v", res.Rows)
	}
	out, err := res.Table(q.Left.Table)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 {
		t.Errorf("materialized rows = %d", out.NumRows())
	}
	if _, err := out.Floats("similarity"); err != nil {
		t.Error(err)
	}
}

func TestSortTopNPublicAPI(t *testing.T) {
	tbl, err := NewTable(
		Schema{{Name: "score", Type: Float64Type}},
		[]Column{Float64Column{3, 1, 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := SortSelection(tbl, Selection{0, 1, 2}, "score", Ascending)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] != 1 || sel[2] != 0 {
		t.Errorf("asc = %v", sel)
	}
	top, err := TopNBy(tbl, "score", Descending, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0] != 0 {
		t.Errorf("top1 = %v", top)
	}
}

func TestCSVPublicAPI(t *testing.T) {
	schema := Schema{
		{Name: "id", Type: Int64Type},
		{Name: "name", Type: StringType},
	}
	tbl, err := ReadCSV(strings.NewReader("id,name\n1,ant\n2,bee\n"), schema)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	names, _ := back.Strings("name")
	if names[1] != "bee" {
		t.Errorf("round trip names = %v", names)
	}
}

// TestFullPipelinePublicAPI chains ingestion -> semantic filter -> join ->
// order-by-similarity -> limit through the public surface only.
func TestFullPipelinePublicAPI(t *testing.T) {
	ctx := context.Background()
	m, err := NewHashModel(64)
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := ReadCSV(strings.NewReader(
		"sku,name\n1,barbecue\n2,database\n3,clothes\n"),
		Schema{{Name: "sku", Type: Int64Type}, {Name: "name", Type: StringType}})
	if err != nil {
		t.Fatal(err)
	}
	feed, err := ReadCSV(strings.NewReader(
		"title\nbarbecues\ndatabases\nclothing\ngiraffe\n"),
		Schema{{Name: "title", Type: StringType}})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{
		Left:  TableRef{Name: "catalog", Table: catalog, TextColumn: "name"},
		Right: TableRef{Name: "feed", Table: feed, TextColumn: "title"},
		Model: m,
		Join:  JoinSpec{Kind: ThresholdJoin, Threshold: 0.35},
	}
	res, _, err := Run(ctx, q, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := MaterializeResult(q, res)
	if err != nil {
		t.Fatal(err)
	}
	best, err := TopNBy(joined, "similarity", Descending, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(best) != 2 {
		t.Fatalf("best = %v", best)
	}
	sims, _ := joined.Floats("similarity")
	if sims[best[0]] < sims[best[1]] {
		t.Error("not ordered by similarity")
	}
}

// TestFacadePrecisionLadder: the precision re-exports work end to end —
// parse, a PQ index through the facade with rerank, and a snapshot round
// trip through the generic index container.
func TestFacadePrecisionLadder(t *testing.T) {
	if p, err := ParsePrecision("int8"); err != nil || p != PrecisionInt8 {
		t.Fatalf("ParsePrecision: %v %v", p, err)
	}

	rows := make([][]float32, 200)
	rng := rand.New(rand.NewSource(5))
	for i := range rows {
		v := make([]float32, 16)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		rows[i] = v
	}
	ix, err := BuildPQIndex(rows, IVFConfig{Seed: 1}, PQConfig{M: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachPQRerank(ix, rows); err != nil {
		t.Fatal(err)
	}
	hits, err := ix.TopK(rows[0], 3, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 || hits[0].ID != 0 {
		t.Fatalf("self-probe hits %v", hits)
	}

	var buf bytes.Buffer
	if err := SaveVectorIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	back, err := LoadVectorIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.(*PQIndex); !ok {
		t.Fatalf("snapshot decoded as %T", back)
	}
}
